// Package spec implements the declarative workload-spec language:
// a versioned, stdlib-only JSON format ("presto-workload/1") that
// turns "scenario" into data rather than code. A spec names a set of
// clients, each with a traffic share, an arrival process (poisson,
// gamma, weibull, on-off, or once), a flow-size distribution (fixed,
// lognormal, pareto, empirical CDF, or unlimited), a src/dst selection
// policy (pairs, stride, random, bijection, incast, north-south), and
// an optional start/stop window — or a recorded trace of flow starts
// to replay verbatim. Compile (generator.go) turns a validated spec
// into a deterministic event-driven generator on a cluster.Cluster:
// every random draw comes from per-client RNG streams derived from the
// run seed, so a spec + seed is byte-identical at any parallelism.
//
// Specs load from JSON files (Load), raw bytes (Parse), named presets
// (Preset, presets.go), or either (Resolve). Validation failures carry
// field paths ("clients[2].arrival.process: ...") so a bad spec is
// diagnosable without reading the loader source.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"presto/internal/sim"
)

// Version is the format identifier every spec must carry.
const Version = "presto-workload/1"

// Duration is a sim.Time that marshals as a Go duration string
// ("50ms") and unmarshals from either a string or a bare nanosecond
// count, so specs stay human-writable.
type Duration sim.Time

// MarshalJSON renders the duration as its Go string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(sim.Time(d).AsDuration().String())
}

// UnmarshalJSON accepts "150ms"-style strings or integer nanoseconds;
// null leaves the duration unset.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if bytes.Equal(b, []byte("null")) {
		return nil
	}
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = Duration(sim.FromDuration(v))
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return err
	}
	*d = Duration(sim.FromDuration(time.Duration(ns)))
	return nil
}

// Spec is one complete workload description.
type Spec struct {
	// Version must be "presto-workload/1".
	Version string `json:"version"`
	// Name labels the spec in campaign cell IDs and artifacts. Presets
	// use their preset name; file-loaded specs default to "workload".
	Name string `json:"name,omitempty"`
	// Seed, when non-zero, is folded into every RNG stream derivation
	// alongside the run seed, so two specs that differ only in Seed
	// draw independent streams.
	Seed uint64 `json:"seed,omitempty"`
	// AggregateRate is the total flow arrival rate in flows/sec shared
	// by clients via RateFraction. Clients with an explicit Rate ignore
	// it.
	AggregateRate float64 `json:"aggregate_rate,omitempty"`
	// Clients are the traffic sources; at least one is required.
	Clients []Client `json:"clients"`
}

// Client is one traffic source of a spec.
type Client struct {
	// ID names the client in results and error messages; required and
	// unique within the spec.
	ID string `json:"id"`
	// RateFraction is this client's share of AggregateRate. Fractions
	// of all fraction-rated clients must sum to 1.
	RateFraction float64 `json:"rate_fraction,omitempty"`
	// Rate is an explicit arrival rate in flows/sec, overriding
	// RateFraction × AggregateRate.
	Rate float64 `json:"rate,omitempty"`
	// Arrival is the arrival process; required unless Trace is set.
	Arrival Arrival `json:"arrival"`
	// Size is the flow-size distribution; required unless Trace is set.
	Size SizeDist `json:"size"`
	// Select is the src/dst selection policy; required unless Trace is
	// set.
	Select Select `json:"select"`
	// Start/Stop bound the client's active window relative to run
	// start. Stop 0 means "until the run ends".
	Start Duration `json:"start,omitempty"`
	Stop  Duration `json:"stop,omitempty"`
	// Trace, when set, replays a recorded flow-start log instead of
	// synthesizing traffic; Arrival/Size/Select must be absent.
	Trace *TraceSource `json:"trace,omitempty"`
}

// Arrival processes.
const (
	ProcPoisson = "poisson"
	ProcGamma   = "gamma"
	ProcWeibull = "weibull"
	ProcOnOff   = "onoff"
	ProcOnce    = "once"
)

// Arrival describes a client's flow inter-arrival process.
type Arrival struct {
	// Process is poisson | gamma | weibull | onoff | once.
	//
	//   poisson  memoryless exponential gaps (steady traffic)
	//   gamma    gamma-distributed gaps; CV > 1 is bursty, CV < 1 regular
	//   weibull  weibull gaps with the given shape (shape < 1 heavy-tailed)
	//   onoff    poisson arrivals gated by an on/off duty cycle
	//   once     one flow per selected pair at window start (elephants)
	Process string `json:"process"`
	// CV is the coefficient of variation for gamma (default 1 =
	// poisson-like).
	CV float64 `json:"cv,omitempty"`
	// Shape is the weibull shape parameter (default 1 = exponential).
	Shape float64 `json:"shape,omitempty"`
	// On/Off are the duty-cycle windows for onoff.
	On  Duration `json:"on,omitempty"`
	Off Duration `json:"off,omitempty"`
}

// Size distribution kinds.
const (
	SizeFixed     = "fixed"
	SizeLognormal = "lognormal"
	SizePareto    = "pareto"
	SizeEmpirical = "empirical"
	SizeUnlimited = "unlimited"
)

// SizeDist describes a client's flow-size distribution, in bytes.
type SizeDist struct {
	// Kind is fixed | lognormal | pareto | empirical | unlimited.
	// unlimited flows never finish (long-running elephants measured by
	// throughput, not FCT) and are only valid with the once process.
	Kind string `json:"kind"`
	// Bytes is the fixed size.
	Bytes int `json:"bytes,omitempty"`
	// MedianBytes/Sigma parameterize lognormal: exp(ln(median)+sigma·N).
	MedianBytes float64 `json:"median_bytes,omitempty"`
	Sigma       float64 `json:"sigma,omitempty"`
	// ScaleBytes/Alpha parameterize pareto: scale·U^(-1/alpha).
	ScaleBytes float64 `json:"scale_bytes,omitempty"`
	Alpha      float64 `json:"alpha,omitempty"`
	// CDF is the empirical distribution: ascending (bytes, frac) points
	// with frac ending at 1 — the CDC-style heavy-tail shape. Sampling
	// interpolates linearly between points.
	CDF []CDFPoint `json:"cdf,omitempty"`
	// Min/Max clamp every sampled size (0 = unbounded on that side).
	Min int `json:"min,omitempty"`
	Max int `json:"max,omitempty"`
}

// CDFPoint is one point of an empirical size CDF.
type CDFPoint struct {
	Bytes float64 `json:"bytes"`
	Frac  float64 `json:"frac"`
}

// Selection kinds.
const (
	SelPairs      = "pairs"
	SelStride     = "stride"
	SelRandom     = "random"
	SelBijection  = "bijection"
	SelIncast     = "incast"
	SelNorthSouth = "northsouth"
)

// Select describes how each arrival picks its (src, dst) pair.
type Select struct {
	// Kind is pairs | stride | random | bijection | incast | northsouth.
	//
	//   pairs       uniform over the explicit Pairs list
	//   stride      uniform over {(i, (i+Stride) mod N)}
	//   random      uniform src, random cross-pod dst
	//   bijection   uniform over a seed-drawn cross-pod permutation
	//   incast      uniform dst; each arrival opens FanIn concurrent
	//               flows from distinct random sources (fan-in capped
	//               at N-1 on small fabrics)
	//   northsouth  uniform server src, uniform remote (spine-attached
	//               user) dst — requires a topology with remotes
	Kind string `json:"kind"`
	// Stride is the stride offset (default N/2).
	Stride int `json:"stride,omitempty"`
	// FanIn is the incast fan-in degree; required for incast.
	FanIn int `json:"fan_in,omitempty"`
	// Pairs are explicit (src, dst) host pairs; required for pairs.
	Pairs [][2]int `json:"pairs,omitempty"`
}

// TraceSource replays a recorded flow-start log.
type TraceSource struct {
	// Path is a CSV or JSONL flow-start log (see trace.go for the
	// format); relative paths resolve against the loader's working
	// directory.
	Path string `json:"path,omitempty"`
	// Inline embeds the flow starts directly in the spec (exactly one
	// of Path/Inline must be set), which keeps specs self-contained for
	// prestod submission.
	Inline []FlowStart `json:"inline,omitempty"`
	// TimeScale multiplies every recorded timestamp (0.5 replays twice
	// as fast). Default 1.
	TimeScale float64 `json:"time_scale,omitempty"`
	// Loop restarts the trace from its beginning until the client's
	// window closes, shifting timestamps by the trace span per lap.
	Loop bool `json:"loop,omitempty"`
}

// FlowStart is one recorded flow start: at time At, Src opened a flow
// of Bytes bytes to Dst.
type FlowStart struct {
	At    Duration `json:"at"`
	Src   int      `json:"src"`
	Dst   int      `json:"dst"`
	Bytes int      `json:"bytes"`
}

// Parse decodes and validates a spec from JSON bytes. Unknown fields
// are rejected so typos fail loudly instead of silently changing the
// workload.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	s := &Spec{}
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("workload spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Load reads and validates a spec from a JSON file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Resolve loads a spec from a preset name ("elephants", "incast32",
// ...) or, failing that, a JSON file path — the kube-burner-style "a
// name is enough" entry point every front-end shares.
func Resolve(nameOrPath string) (*Spec, error) {
	if IsPreset(nameOrPath) {
		return Preset(nameOrPath)
	}
	return Load(nameOrPath)
}

// ResolveJSON resolves a JSON value that is either a string (preset
// name or file path) or an inline spec object — the wire form prestod
// job requests carry.
func ResolveJSON(raw []byte) (*Spec, error) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("workload: empty value")
	}
	if trimmed[0] == '"' {
		var name string
		if err := json.Unmarshal(trimmed, &name); err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		return Resolve(name)
	}
	return Parse(trimmed)
}

// Canonical returns the spec's canonical JSON encoding (struct field
// order, sorted map keys) — the bytes Hash fingerprints.
func (s *Spec) Canonical() []byte {
	data, err := json.Marshal(s)
	if err != nil {
		// Spec contains only marshalable types; this is unreachable for
		// a validated spec.
		panic(fmt.Sprintf("spec: canonical encode: %v", err))
	}
	return data
}

// Hash fingerprints the spec's identity: the first 16 hex characters
// of the SHA-256 of its canonical JSON. Campaign cells record it so
// artifacts (and the future result cache) key on the exact workload.
func (s *Spec) Hash() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])[:16]
}

// badField marks a validation failure with its JSON field path.
func badField(path, format string, args ...any) error {
	return fmt.Errorf("%s: %s", path, fmt.Sprintf(format, args...))
}

// finiteNonNeg rejects NaN/Inf/negative parameters.
func finiteNonNeg(path, name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return badField(path, "%s is %v; must be finite", name, v)
	}
	if v < 0 {
		return badField(path, "%s is %v; must be >= 0", name, v)
	}
	return nil
}

// Validate checks the spec's topology-independent invariants, reporting
// the first violation with its field path. Topology-dependent checks
// (host IDs in range, remotes present) happen at Compile.
func (s *Spec) Validate() error {
	if s.Version != Version {
		return badField("version", "got %q, want %q", s.Version, Version)
	}
	if err := finiteNonNeg("aggregate_rate", "rate", s.AggregateRate); err != nil {
		return err
	}
	if len(s.Clients) == 0 {
		return badField("clients", "at least one client is required")
	}
	seen := make(map[string]bool, len(s.Clients))
	fracSum := 0.0
	nFrac := 0
	for i := range s.Clients {
		c := &s.Clients[i]
		path := fmt.Sprintf("clients[%d]", i)
		if c.ID == "" {
			return badField(path+".id", "required")
		}
		if seen[c.ID] {
			return badField(path+".id", "duplicate client id %q", c.ID)
		}
		seen[c.ID] = true
		if err := c.validate(path, s); err != nil {
			return err
		}
		if c.Trace == nil && c.Rate == 0 && c.Arrival.Process != ProcOnce {
			fracSum += c.RateFraction
			nFrac++
		}
	}
	if nFrac > 0 && math.Abs(fracSum-1) > 1e-6 {
		return badField("clients", "rate fractions sum to %g; must sum to 1", fracSum)
	}
	return nil
}

// validate checks one client.
func (c *Client) validate(path string, s *Spec) error {
	if c.Stop != 0 && c.Stop <= c.Start {
		return badField(path+".stop", "stop %v <= start %v", sim.Time(c.Stop), sim.Time(c.Start))
	}
	if c.Trace != nil {
		if c.Arrival != (Arrival{}) || c.Size.Kind != "" || c.Select.Kind != "" {
			return badField(path+".trace", "trace clients must not set arrival/size/select")
		}
		return c.Trace.validate(path + ".trace")
	}
	if err := c.validateRate(path, s); err != nil {
		return err
	}
	if err := c.Arrival.validate(path + ".arrival"); err != nil {
		return err
	}
	if err := c.Size.validate(path + ".size"); err != nil {
		return err
	}
	if err := c.Select.validate(path + ".select"); err != nil {
		return err
	}
	if c.Size.Kind == SizeUnlimited && c.Arrival.Process != ProcOnce {
		return badField(path+".size.kind", "unlimited flows require the once process (they never finish)")
	}
	if c.Arrival.Process == ProcOnce {
		switch c.Select.Kind {
		case SelPairs, SelStride, SelBijection:
		default:
			return badField(path+".select.kind", "once needs an enumerable pair set (pairs, stride, bijection); got %q", c.Select.Kind)
		}
	}
	return nil
}

// validateRate checks the client has exactly one usable rate source.
func (c *Client) validateRate(path string, s *Spec) error {
	if err := finiteNonNeg(path+".rate", "rate", c.Rate); err != nil {
		return err
	}
	if err := finiteNonNeg(path+".rate_fraction", "rate_fraction", c.RateFraction); err != nil {
		return err
	}
	if c.RateFraction > 1 {
		return badField(path+".rate_fraction", "got %g; must be in [0, 1]", c.RateFraction)
	}
	if c.Arrival.Process == ProcOnce {
		if c.Rate != 0 || c.RateFraction != 0 {
			return badField(path+".rate", "once clients take no rate")
		}
		return nil
	}
	if c.Rate > 0 && c.RateFraction > 0 {
		return badField(path+".rate", "set rate or rate_fraction, not both")
	}
	if c.Rate == 0 {
		if c.RateFraction == 0 {
			return badField(path+".rate", "a rate is required: rate, or rate_fraction with aggregate_rate")
		}
		if s.AggregateRate <= 0 {
			return badField(path+".rate_fraction", "rate_fraction needs a positive top-level aggregate_rate")
		}
	}
	return nil
}

// validate checks an arrival process.
func (a *Arrival) validate(path string) error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"cv", a.CV}, {"shape", a.Shape}} {
		if err := finiteNonNeg(path, p.name, p.v); err != nil {
			return err
		}
	}
	switch a.Process {
	case ProcPoisson, ProcOnce:
	case ProcGamma:
		// CV 0 defaults to 1 at compile.
	case ProcWeibull:
		// Shape 0 defaults to 1 at compile.
	case ProcOnOff:
		if a.On <= 0 || a.Off <= 0 {
			return badField(path+".on", "onoff needs positive on and off windows (got on=%v off=%v)", sim.Time(a.On), sim.Time(a.Off))
		}
	case "":
		return badField(path+".process", "required (poisson, gamma, weibull, onoff, once)")
	default:
		return badField(path+".process", "unknown process %q (poisson, gamma, weibull, onoff, once)", a.Process)
	}
	return nil
}

// validate checks a size distribution.
func (d *SizeDist) validate(path string) error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"median_bytes", d.MedianBytes}, {"sigma", d.Sigma},
		{"scale_bytes", d.ScaleBytes}, {"alpha", d.Alpha},
	} {
		if err := finiteNonNeg(path, p.name, p.v); err != nil {
			return err
		}
	}
	if d.Min < 0 || d.Max < 0 {
		return badField(path+".min", "bounds must be >= 0 (got min=%d max=%d)", d.Min, d.Max)
	}
	if d.Min != 0 && d.Max != 0 && d.Min > d.Max {
		return badField(path+".min", "inverted bounds: min %d > max %d", d.Min, d.Max)
	}
	switch d.Kind {
	case SizeFixed:
		if d.Bytes <= 0 {
			return badField(path+".bytes", "fixed size needs bytes > 0 (got %d)", d.Bytes)
		}
	case SizeLognormal:
		if d.MedianBytes <= 0 {
			return badField(path+".median_bytes", "lognormal needs median_bytes > 0")
		}
	case SizePareto:
		if d.ScaleBytes <= 0 {
			return badField(path+".scale_bytes", "pareto needs scale_bytes > 0")
		}
		if d.Alpha <= 0 {
			return badField(path+".alpha", "pareto needs alpha > 0")
		}
	case SizeEmpirical:
		if len(d.CDF) < 2 {
			return badField(path+".cdf", "empirical needs >= 2 CDF points")
		}
		for i, pt := range d.CDF {
			ppath := fmt.Sprintf("%s.cdf[%d]", path, i)
			if math.IsNaN(pt.Bytes) || math.IsInf(pt.Bytes, 0) || pt.Bytes <= 0 {
				return badField(ppath, "bytes %v must be finite and > 0", pt.Bytes)
			}
			if math.IsNaN(pt.Frac) || pt.Frac < 0 || pt.Frac > 1 {
				return badField(ppath, "frac %v must be in [0, 1]", pt.Frac)
			}
			if i > 0 && (pt.Bytes <= d.CDF[i-1].Bytes || pt.Frac <= d.CDF[i-1].Frac) {
				return badField(ppath, "CDF points must be strictly ascending in bytes and frac")
			}
		}
		if last := d.CDF[len(d.CDF)-1].Frac; last != 1 {
			return badField(fmt.Sprintf("%s.cdf[%d].frac", path, len(d.CDF)-1), "CDF must end at frac 1 (got %g)", last)
		}
	case SizeUnlimited:
	case "":
		return badField(path+".kind", "required (fixed, lognormal, pareto, empirical, unlimited)")
	default:
		return badField(path+".kind", "unknown size kind %q (fixed, lognormal, pareto, empirical, unlimited)", d.Kind)
	}
	return nil
}

// validate checks a selection policy.
func (sel *Select) validate(path string) error {
	switch sel.Kind {
	case SelPairs:
		if len(sel.Pairs) == 0 {
			return badField(path+".pairs", "pairs selection needs at least one (src, dst) pair")
		}
		for i, p := range sel.Pairs {
			if p[0] < 0 || p[1] < 0 {
				return badField(fmt.Sprintf("%s.pairs[%d]", path, i), "host IDs must be >= 0")
			}
			if p[0] == p[1] {
				return badField(fmt.Sprintf("%s.pairs[%d]", path, i), "src == dst (%d)", p[0])
			}
		}
	case SelStride:
		if sel.Stride < 0 {
			return badField(path+".stride", "got %d; must be >= 0 (0 = N/2)", sel.Stride)
		}
	case SelRandom, SelBijection, SelNorthSouth:
	case SelIncast:
		if sel.FanIn < 2 {
			return badField(path+".fan_in", "incast needs fan_in >= 2 (got %d)", sel.FanIn)
		}
	case "":
		return badField(path+".kind", "required (pairs, stride, random, bijection, incast, northsouth)")
	default:
		return badField(path+".kind", "unknown selection %q (pairs, stride, random, bijection, incast, northsouth)", sel.Kind)
	}
	return nil
}

// validate checks a trace source.
func (t *TraceSource) validate(path string) error {
	if (t.Path == "") == (len(t.Inline) == 0) {
		return badField(path, "exactly one of path or inline is required")
	}
	if err := finiteNonNeg(path+".time_scale", "time_scale", t.TimeScale); err != nil {
		return err
	}
	for i, f := range t.Inline {
		if err := validateFlowStart(fmt.Sprintf("%s.inline[%d]", path, i), f); err != nil {
			return err
		}
	}
	return nil
}

// validateFlowStart checks one recorded flow start (shared with the
// flow-log readers).
func validateFlowStart(path string, f FlowStart) error {
	if f.At < 0 {
		return badField(path+".at", "negative start time %v", sim.Time(f.At))
	}
	if f.Src < 0 || f.Dst < 0 {
		return badField(path+".src", "host IDs must be >= 0 (got src=%d dst=%d)", f.Src, f.Dst)
	}
	if f.Src == f.Dst {
		return badField(path+".src", "src == dst (%d)", f.Src)
	}
	if f.Bytes <= 0 {
		return badField(path+".bytes", "flow size must be > 0 (got %d)", f.Bytes)
	}
	return nil
}

// NeedsRemotes reports whether any client targets north-south remotes,
// so front-ends know to attach remote users to the topology before
// Compile.
func (s *Spec) NeedsRemotes() bool {
	for i := range s.Clients {
		if s.Clients[i].Trace == nil && s.Clients[i].Select.Kind == SelNorthSouth {
			return true
		}
	}
	return false
}
