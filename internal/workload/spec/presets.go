package spec

// Named presets make common workloads resolvable without a file,
// kube-burner-style: every front-end accepts a preset name anywhere it
// accepts a spec path. Each preset is an ordinary Spec — the committed
// examples/specs/*.json files are their JSON forms, and TestPresets
// pins the two in sync.

// PresetNames lists the named presets, sorted.
func PresetNames() []string {
	return []string{"elephants", "incast32", "mice-heavy", "trace"}
}

// IsPreset reports whether name is a known preset.
func IsPreset(name string) bool {
	for _, p := range PresetNames() {
		if p == name {
			return true
		}
	}
	return false
}

// Preset returns a fresh copy of the named preset spec.
func Preset(name string) (*Spec, error) {
	var s *Spec
	switch name {
	case "elephants":
		// Long-running stride elephants: one unlimited flow per server
		// to the server half the fabric away — the paper's throughput /
		// fairness baseline.
		s = &Spec{
			Version: Version,
			Name:    "elephants",
			Clients: []Client{{
				ID:      "elephants",
				Arrival: Arrival{Process: ProcOnce},
				Size:    SizeDist{Kind: SizeUnlimited},
				Select:  Select{Kind: SelStride},
			}},
		}
	case "mice-heavy":
		// 90% mice (empirical web-like heavy tail, most flows < 100 KB)
		// + 10% elephant transfers (Pareto, ≥ 1 MB): the elephant/mice
		// byte-vs-count decomposition the paper's schemes are judged on.
		s = &Spec{
			Version:       Version,
			Name:          "mice-heavy",
			AggregateRate: 2000,
			Clients: []Client{
				{
					ID:           "mice",
					RateFraction: 0.9,
					Arrival:      Arrival{Process: ProcPoisson},
					Size: SizeDist{
						Kind: SizeEmpirical,
						CDF: []CDFPoint{
							{Bytes: 500, Frac: 0.15},
							{Bytes: 5_000, Frac: 0.50},
							{Bytes: 30_000, Frac: 0.80},
							{Bytes: 100_000, Frac: 0.95},
							{Bytes: 1_000_000, Frac: 1},
						},
					},
					Select: Select{Kind: SelRandom},
				},
				{
					ID:           "elephants",
					RateFraction: 0.1,
					Arrival:      Arrival{Process: ProcPoisson},
					Size: SizeDist{
						Kind:       SizePareto,
						ScaleBytes: 1_000_000,
						Alpha:      1.5,
						Max:        50_000_000,
					},
					Select: Select{Kind: SelRandom},
				},
			},
		}
	case "incast32":
		// Partition-aggregate: bursts of 32 synchronized senders each
		// delivering a 64 KB shard to one aggregator. Fan-in is capped
		// at N-1 on fabrics with fewer than 33 servers.
		s = &Spec{
			Version: Version,
			Name:    "incast32",
			Clients: []Client{{
				ID:      "incast",
				Rate:    100,
				Arrival: Arrival{Process: ProcPoisson},
				Size:    SizeDist{Kind: SizeFixed, Bytes: 64_000},
				Select:  Select{Kind: SelIncast, FanIn: 32},
			}},
		}
	case "trace":
		// A tiny inline trace demonstrating the replay format: two
		// elephants then a sprinkle of mice, looped for the whole run.
		ms := func(v int64) Duration { return Duration(v * 1_000_000) }
		s = &Spec{
			Version: Version,
			Name:    "trace",
			Clients: []Client{{
				ID: "replay",
				Trace: &TraceSource{
					Loop: true,
					Inline: []FlowStart{
						{At: ms(0), Src: 0, Dst: 8, Bytes: 2_000_000},
						{At: ms(0), Src: 1, Dst: 9, Bytes: 2_000_000},
						{At: ms(1), Src: 2, Dst: 10, Bytes: 50_000},
						{At: ms(2), Src: 3, Dst: 11, Bytes: 50_000},
						{At: ms(3), Src: 4, Dst: 12, Bytes: 50_000},
						{At: ms(4), Src: 5, Dst: 13, Bytes: 50_000},
						{At: ms(5), Src: 6, Dst: 14, Bytes: 50_000},
					},
				},
			}},
		}
	default:
		return nil, badField("preset", "unknown preset %q (have %v)", name, PresetNames())
	}
	if err := s.Validate(); err != nil {
		// Presets are code; an invalid one is a programming error.
		panic("spec: invalid preset " + name + ": " + err.Error())
	}
	return s, nil
}
