// Package workload generates the offered traffic of §4's evaluation:
// the shuffle / stride / random / random-bijection synthetic patterns,
// mice flows with application-level acknowledgements, sockperf-style
// RTT probes, the trace-driven heavy-tailed workload modeled after the
// measurements of Kandula et al. (substituted with a synthetic
// log-normal+Pareto distribution, see DESIGN.md), and the north-south
// cross-traffic of Table 2.
package workload

import (
	"math"

	"presto/internal/cluster"
	"presto/internal/metrics"
	"presto/internal/packet"
	"presto/internal/sim"
)

// Elephants tracks a set of long-running flows and their throughput.
type Elephants struct {
	Conns   []*cluster.Conn
	startAt sim.Time
	baseRx  []uint64
}

// Throughputs returns per-flow goodput in Gbps since measurement
// start.
func (e *Elephants) Throughputs(now sim.Time) []float64 {
	dur := (now - e.startAt).Seconds()
	if dur <= 0 {
		return nil
	}
	out := make([]float64, len(e.Conns))
	for i, c := range e.Conns {
		out[i] = float64(c.Delivered()-e.baseRx[i]) * 8 / dur / 1e9
	}
	return out
}

// Mean returns the average per-flow throughput in Gbps.
func (e *Elephants) Mean(now sim.Time) float64 {
	ts := e.Throughputs(now)
	if len(ts) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range ts {
		sum += t
	}
	return sum / float64(len(ts))
}

// Fairness returns Jain's index over per-flow throughputs.
func (e *Elephants) Fairness(now sim.Time) float64 {
	return metrics.JainIndex(e.Throughputs(now))
}

// ResetBaseline restarts throughput measurement at now (to skip
// slow-start warmup, or to isolate a failover stage).
func (e *Elephants) ResetBaseline(now sim.Time) {
	e.startAt = now
	for i, c := range e.Conns {
		e.baseRx[i] = c.Delivered()
	}
}

// Pairs opens one unlimited flow per (src, dst) pair — the generic
// elephant starter the figure-specific patterns build on.
func Pairs(c *cluster.Cluster, pairs [][2]packet.HostID) *Elephants {
	return startElephants(c, pairs)
}

// startElephants opens one unlimited flow per (src, dst) pair.
func startElephants(c *cluster.Cluster, pairs [][2]packet.HostID) *Elephants {
	e := &Elephants{}
	for _, p := range pairs {
		conn := c.Dial(p[0], p[1])
		conn.SetUnlimited(true)
		e.Conns = append(e.Conns, conn)
	}
	e.baseRx = make([]uint64, len(e.Conns))
	e.startAt = c.Now()
	return e
}

// Stride starts the stride(k) workload: server[i] sends to
// server[(i+k) mod N] (§4).
func Stride(c *cluster.Cluster, k int) *Elephants {
	n := serverCount(c)
	pairs := make([][2]packet.HostID, 0, n)
	for i := 0; i < n; i++ {
		pairs = append(pairs, [2]packet.HostID{packet.HostID(i), packet.HostID((i + k) % n)})
	}
	return startElephants(c, pairs)
}

// RandomBijection starts the random bijection workload: a random
// permutation where every server sends to one cross-pod destination
// and receives from exactly one sender.
func RandomBijection(c *cluster.Cluster, rng *sim.RNG) *Elephants {
	n := serverCount(c)
	perm := crossPodPermutation(c, rng, n)
	pairs := make([][2]packet.HostID, 0, n)
	for i, d := range perm {
		if i == d {
			// Only the n==1 degenerate fallback produces a fixed point;
			// a host never opens an elephant flow to itself.
			continue
		}
		pairs = append(pairs, [2]packet.HostID{packet.HostID(i), packet.HostID(d)})
	}
	return startElephants(c, pairs)
}

// crossPod reports whether (src, dst) is a valid cross-pod pair. On a
// single-switch topology every host shares the "pod", so the
// constraint degenerates to src != dst (otherwise the Optimal baseline
// could never run the random workloads).
func crossPod(c *cluster.Cluster, src, dst packet.HostID) bool {
	if src == dst {
		return false
	}
	if len(c.Topo.Leaves) < 2 {
		return true
	}
	return !c.Topo.SameLeaf(src, dst)
}

// Random starts the random workload: each server picks a random
// cross-pod destination; receivers may collide. Sources with no valid
// cross-pod destination (degenerate topologies) are skipped rather
// than retried forever.
func Random(c *cluster.Cluster, rng *sim.RNG) *Elephants {
	n := serverCount(c)
	pairs := make([][2]packet.HostID, 0, n)
	for i := 0; i < n; i++ {
		if d, ok := randomCrossPodDst(c, rng, packet.HostID(i), n); ok {
			pairs = append(pairs, [2]packet.HostID{packet.HostID(i), d})
		}
	}
	return startElephants(c, pairs)
}

// randomCrossPodDst draws a cross-pod destination for src. The draw
// loop is bounded: after maxDraws rejections it falls back to a
// deterministic scan for the first valid destination, and reports
// ok=false when the topology offers none at all (e.g. every other
// host shares src's leaf) — the caller must not retry, or a degenerate
// topology would hang the campaign runner.
func randomCrossPodDst(c *cluster.Cluster, rng *sim.RNG, src packet.HostID, n int) (packet.HostID, bool) {
	const maxDraws = 200
	for attempt := 0; attempt < maxDraws; attempt++ {
		d := packet.HostID(rng.Intn(n))
		if crossPod(c, src, d) {
			return d, true
		}
	}
	for d := 0; d < n; d++ {
		if crossPod(c, src, packet.HostID(d)) {
			return packet.HostID(d), true
		}
	}
	return 0, false
}

// PairsN starts n one-to-one elephant pairs: host i on the first leaf
// to host i on the second (the Figure 4a/4b benchmarks).
func PairsN(c *cluster.Cluster, n int) *Elephants {
	half := serverCount(c) / 2
	pairs := make([][2]packet.HostID, 0, n)
	for i := 0; i < n; i++ {
		pairs = append(pairs, [2]packet.HostID{packet.HostID(i % half), packet.HostID(half + i%half)})
	}
	return startElephants(c, pairs)
}

// crossPodPermutation draws random permutations until it finds one
// with no fixed points or same-leaf assignments. The draw loop is
// bounded, and the fallback is a deterministic derangement, so even a
// topology where the constraint is unsatisfiable (≤2 pods, or all
// servers on one leaf) terminates instead of hanging the campaign
// runner.
func crossPodPermutation(c *cluster.Cluster, rng *sim.RNG, n int) []int {
	for attempt := 0; attempt < 200; attempt++ {
		p := rng.Perm(n)
		ok := true
		for i, d := range p {
			if !crossPod(c, packet.HostID(i), packet.HostID(d)) {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
	return fallbackDerangement(c, n)
}

// fallbackDerangement returns a deterministic assignment when random
// search fails: the first rotation whose pairs are all cross-pod —
// rotation by n/2 first, the always-valid shift in a balanced Clos
// (and the historical fallback, so existing seeds keep their
// artifacts) — else rotation by 1, a derangement for any n ≥ 2 even
// when the cross-pod constraint is unsatisfiable. Only n == 1 yields
// the identity, which callers must treat as "no valid pairing".
func fallbackDerangement(c *cluster.Cluster, n int) []int {
	rotation := func(k int) []int {
		p := make([]int, n)
		for i := range p {
			p[i] = (i + k) % n
		}
		return p
	}
	allCrossPod := func(p []int) bool {
		for i, d := range p {
			if !crossPod(c, packet.HostID(i), packet.HostID(d)) {
				return false
			}
		}
		return true
	}
	if n <= 1 {
		return make([]int, n)
	}
	if p := rotation(n / 2); allCrossPod(p) {
		return p
	}
	for k := 1; k < n; k++ {
		if k == n/2 {
			continue
		}
		if p := rotation(k); allCrossPod(p) {
			return p
		}
	}
	return rotation(1)
}

// serverCount returns the number of server hosts, excluding marked
// remote users (north-south endpoints, wherever they attach).
func serverCount(c *cluster.Cluster) int {
	n := 0
	for i := 0; i < c.Topo.NumHosts(); i++ {
		h := packet.HostID(i)
		if !c.Topo.SpineAttached(h) && !c.Topo.IsRemote(h) {
			n++
		}
	}
	return n
}

// Shuffle emulates a Hadoop shuffle: every server sends sizePerPeer
// bytes to every other server in random order, keeping two transfers
// in flight at a time (§4). Completed transfers trigger the next.
type Shuffle struct {
	BytesMoved func() uint64
	// Tputs records each completed transfer's goodput in Gbps (the
	// "elephant throughput" of the shuffle workload in Figure 15).
	Tputs *metrics.Dist
	done  *int
	total int
}

// StartShuffle launches the shuffle workload and returns a tracker.
func StartShuffle(c *cluster.Cluster, rng *sim.RNG, sizePerPeer int) *Shuffle {
	n := serverCount(c)
	var moved uint64
	done := 0
	total := 0
	sh := &Shuffle{done: &done, Tputs: &metrics.Dist{}}
	movedPtr := &moved

	for i := 0; i < n; i++ {
		src := packet.HostID(i)
		order := rng.Perm(n)
		var targets []packet.HostID
		for _, d := range order {
			if d != i {
				targets = append(targets, packet.HostID(d))
			}
		}
		total += len(targets)
		next := 0
		var launch func()
		launch = func() {
			if next >= len(targets) {
				return
			}
			dst := targets[next]
			next++
			conn := c.Dial(src, dst)
			start := c.Eng.Now()
			var last uint64
			conn.OnDelivered = func(delivered uint64) {
				*movedPtr += delivered - last
				last = delivered
				if delivered >= uint64(sizePerPeer) {
					conn.OnDelivered = nil
					done++
					if el := sim.Time(c.Eng.Now() - start); el > 0 {
						sh.Tputs.Add(float64(sizePerPeer) * 8 / el.Seconds() / 1e9)
					}
					launch() // start the next transfer
				}
			}
			conn.Write(sizePerPeer)
		}
		// Two concurrent transfers per host.
		launch()
		launch()
	}
	sh.total = total
	sh.BytesMoved = func() uint64 { return moved }
	return sh
}

// Done reports completed transfers out of the total.
func (s *Shuffle) Done() (int, int) { return *s.done, s.total }

// MiceResult records mice flow completion times.
type MiceResult struct {
	FCT metrics.Dist // milliseconds
	// Timeouts counts mice whose sender hit an RTO (the MPTCP
	// pathology in Figure 16 / Table 2).
	Timeouts int
	Started  int
	Finished int
}

// StartMice launches a mice-flow generator: every interval, each
// (src, dst) pair sends a flow of size bytes on a fresh connection and
// waits for a respSize-byte application acknowledgement; the FCT is
// send→response (§4: 50 KB flows every 100 ms).
func StartMice(c *cluster.Cluster, pairs [][2]packet.HostID, size, respSize int, interval sim.Time, until sim.Time) *MiceResult {
	res := &MiceResult{}
	for _, pr := range pairs {
		src, dst := pr[0], pr[1]
		var tick func()
		tick = func() {
			if c.Eng.Now() >= until {
				return
			}
			res.Started++
			conn := c.Dial(src, dst)
			start := c.Eng.Now()
			conn.OnDelivered = func(total uint64) {
				if total >= uint64(size) {
					conn.OnDelivered = nil
					conn.WriteReverse(respSize)
				}
			}
			conn.OnReverseDelivered = func(total uint64) {
				if total >= uint64(respSize) {
					conn.OnReverseDelivered = nil
					res.Finished++
					res.FCT.Add(sim.Time(c.Eng.Now() - start).Milliseconds())
					if conn.SenderTimeouts() > 0 {
						res.Timeouts++
					}
					conn.Close()
				}
			}
			conn.Write(size)
			c.Eng.Schedule(interval, tick)
		}
		c.Eng.Schedule(c.RNG().Duration(interval), tick) // staggered start
	}
	return res
}

// StartProbers launches RTT probers over the given pairs and returns
// them (call CollectRTT after the run).
func StartProbers(c *cluster.Cluster, pairs [][2]packet.HostID, interval sim.Time) []*cluster.Prober {
	var ps []*cluster.Prober
	for _, pr := range pairs {
		p := c.NewProber(pr[0], pr[1], interval)
		p.Start()
		ps = append(ps, p)
	}
	return ps
}

// CollectRTT merges prober samples into one distribution (ms).
func CollectRTT(ps []*cluster.Prober) *metrics.Dist {
	var d metrics.Dist
	for _, p := range ps {
		for _, v := range p.Samples.Samples() {
			d.Add(v)
		}
	}
	return &d
}

// FlowSizeDist is the synthetic heavy-tailed flow-size distribution
// standing in for the datacenter traces of Kandula et al. [33]
// (DESIGN.md substitution): a log-normal body (median ~10 KB) with a
// Pareto tail so that most flows are mice (<100 KB) while most bytes
// come from elephants (>1 MB), the decomposition the paper relies on.
type FlowSizeDist struct {
	rng *sim.RNG
	// Scale multiplies every sampled size (the paper scales by 10 to
	// emulate a heavier workload, §6).
	Scale float64
}

// NewFlowSizeDist builds the sampler.
func NewFlowSizeDist(rng *sim.RNG, scale float64) *FlowSizeDist {
	if scale <= 0 {
		scale = 1
	}
	return &FlowSizeDist{rng: rng, Scale: scale}
}

// Sample draws one flow size in bytes.
func (f *FlowSizeDist) Sample() int {
	var size float64
	if f.rng.Float64() < 0.95 {
		// Body: log-normal, median 10 KB, sigma 1.3.
		size = 10_000 * math.Exp(1.3*f.rng.NormFloat64())
	} else {
		// Tail: Pareto alpha=1.1, minimum 1 MB.
		u := f.rng.Float64()
		if u < 1e-9 {
			u = 1e-9
		}
		size = 1e6 * math.Pow(u, -1/1.1)
	}
	size *= f.Scale
	if size < 100 {
		size = 100
	}
	if size > 1e9 {
		size = 1e9
	}
	return int(size)
}

// TraceResult aggregates trace-driven workload measurements.
type TraceResult struct {
	MiceFCT     metrics.Dist // FCT of flows < 100 KB (ms)
	ElephantTps metrics.Dist // goodput of flows > 1 MB (Gbps)
	Flows       int
}

// StartTrace launches the trace-driven workload: each server samples
// flow sizes and inter-arrival times (Poisson with the given mean) and
// sends each flow to a random cross-rack destination over a fresh
// connection (§6, scaled ×10).
func StartTrace(c *cluster.Cluster, rng *sim.RNG, meanInterarrival sim.Time, scale float64, until sim.Time) *TraceResult {
	res := &TraceResult{}
	n := serverCount(c)
	sizes := NewFlowSizeDist(rng.Fork(), scale)
	for i := 0; i < n; i++ {
		src := packet.HostID(i)
		r := rng.Fork()
		var tick func()
		tick = func() {
			if c.Eng.Now() >= until {
				return
			}
			dst, ok := randomCrossPodDst(c, r, src, n)
			if !ok {
				return // no valid destination exists; stop this generator
			}
			size := sizes.Sample()
			conn := c.Dial(src, dst)
			start := c.Eng.Now()
			res.Flows++
			conn.OnDelivered = func(total uint64) {
				if total >= uint64(size) {
					conn.OnDelivered = nil
					el := sim.Time(c.Eng.Now() - start)
					if size < 100_000 {
						res.MiceFCT.Add(el.Milliseconds())
					} else if size > 1_000_000 {
						res.ElephantTps.Add(float64(size) * 8 / el.Seconds() / 1e9)
					}
					conn.Close()
				}
			}
			conn.Write(size)
			gap := sim.Time(float64(meanInterarrival) * r.ExpFloat64())
			if gap < sim.Microsecond {
				gap = sim.Microsecond
			}
			c.Eng.Schedule(gap, tick)
		}
		c.Eng.Schedule(r.Duration(meanInterarrival), tick)
	}
	return res
}

// StartNorthSouth launches the Table 2 cross traffic: every server
// keeps starting flows to random spine-attached remote users at the
// given interval, flow sizes drawn from a web-like distribution
// (log-normal, median ~20 KB).
func StartNorthSouth(c *cluster.Cluster, rng *sim.RNG, remotes []packet.HostID, interval sim.Time, until sim.Time) {
	n := serverCount(c)
	for i := 0; i < n; i++ {
		src := packet.HostID(i)
		r := rng.Fork()
		var tick func()
		tick = func() {
			if c.Eng.Now() >= until || len(remotes) == 0 {
				return
			}
			dst := remotes[r.Intn(len(remotes))]
			size := int(20_000 * math.Exp(1.0*r.NormFloat64()))
			if size < 500 {
				size = 500
			}
			if size > 5_000_000 {
				size = 5_000_000
			}
			conn := c.Dial(src, dst)
			conn.OnDelivered = func(total uint64) {
				if total >= uint64(size) {
					conn.OnDelivered = nil
					conn.Close()
				}
			}
			conn.Write(size)
			c.Eng.Schedule(interval, tick)
		}
		c.Eng.Schedule(r.Duration(interval), tick)
	}
}
