package workload

import (
	"testing"

	"presto/internal/cluster"
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/topo"
)

func testCluster(scheme cluster.Scheme, seed uint64) *cluster.Cluster {
	return cluster.New(cluster.Config{
		Topology: topo.TwoTierClos(2, 2, 2, 1, topo.LinkConfig{}),
		Scheme:   scheme,
		Seed:     seed,
	})
}

func TestStridePairs(t *testing.T) {
	c := testCluster(cluster.Presto, 1)
	e := Stride(c, 2)
	if len(e.Conns) != 4 {
		t.Fatalf("%d flows", len(e.Conns))
	}
	c.Eng.Run(30 * sim.Millisecond)
	tputs := e.Throughputs(c.Eng.Now())
	for i, g := range tputs {
		if g < 1 {
			t.Errorf("flow %d at %.2f Gbps", i, g)
		}
	}
	if e.Fairness(c.Eng.Now()) < 0.8 {
		t.Errorf("stride fairness %.2f", e.Fairness(c.Eng.Now()))
	}
}

func TestRandomBijectionCrossPod(t *testing.T) {
	c := testCluster(cluster.Presto, 2)
	e := RandomBijection(c, c.RNG())
	seenDst := map[packet.HostID]bool{}
	for _, conn := range e.Conns {
		if c.Topo.SameLeaf(conn.Src, conn.Dst) {
			t.Fatal("bijection assigned a same-pod destination")
		}
		if seenDst[conn.Dst] {
			t.Fatal("bijection reused a destination")
		}
		seenDst[conn.Dst] = true
	}
}

func TestRandomWorkloadCrossPod(t *testing.T) {
	c := testCluster(cluster.ECMP, 3)
	e := Random(c, c.RNG())
	if len(e.Conns) != 4 {
		t.Fatalf("%d flows", len(e.Conns))
	}
	for _, conn := range e.Conns {
		if c.Topo.SameLeaf(conn.Src, conn.Dst) {
			t.Fatal("random workload assigned a same-pod destination")
		}
	}
}

func TestElephantBaselineReset(t *testing.T) {
	c := testCluster(cluster.Presto, 4)
	e := Stride(c, 2)
	c.Eng.Run(20 * sim.Millisecond)
	e.ResetBaseline(c.Eng.Now())
	if got := e.Mean(c.Eng.Now() + 1); got > 0.1 {
		t.Fatalf("throughput right after reset = %v", got)
	}
	c.Eng.Run(40 * sim.Millisecond)
	if got := e.Mean(c.Eng.Now()); got < 1 {
		t.Fatalf("throughput after reset window = %v", got)
	}
}

func TestShuffleCompletesTransfers(t *testing.T) {
	c := testCluster(cluster.Presto, 5)
	sh := StartShuffle(c, c.RNG(), 200_000)
	c.Eng.Run(100 * sim.Millisecond)
	done, total := sh.Done()
	if total != 4*3 {
		t.Fatalf("total transfers = %d, want 12", total)
	}
	if done < total {
		t.Fatalf("only %d/%d transfers completed", done, total)
	}
	if sh.BytesMoved() < uint64(total)*200_000 {
		t.Fatalf("moved %d bytes", sh.BytesMoved())
	}
}

func TestMiceFCTs(t *testing.T) {
	c := testCluster(cluster.Presto, 6)
	pairs := [][2]packet.HostID{{0, 2}, {1, 3}}
	res := StartMice(c, pairs, 50_000, 100, 5*sim.Millisecond, 50*sim.Millisecond)
	c.Eng.Run(80 * sim.Millisecond)
	if res.Finished < 10 {
		t.Fatalf("finished %d mice (started %d)", res.Finished, res.Started)
	}
	if res.FCT.Median() <= 0 || res.FCT.Median() > 5 {
		t.Fatalf("idle mice median FCT = %vms", res.FCT.Median())
	}
}

func TestProbersCollect(t *testing.T) {
	c := testCluster(cluster.Presto, 7)
	ps := StartProbers(c, [][2]packet.HostID{{0, 2}}, sim.Millisecond)
	c.Eng.Run(20 * sim.Millisecond)
	d := CollectRTT(ps)
	if d.N() < 10 {
		t.Fatalf("%d RTT samples", d.N())
	}
}

func TestFlowSizeDistShape(t *testing.T) {
	f := NewFlowSizeDist(sim.NewRNG(1), 1)
	var mice, eleph, total int
	var bytes, elephBytes float64
	const n = 50_000
	for i := 0; i < n; i++ {
		s := f.Sample()
		total++
		bytes += float64(s)
		if s < 100_000 {
			mice++
		}
		if s > 1_000_000 {
			eleph++
			elephBytes += float64(s)
		}
	}
	// The decomposition the paper relies on: the overwhelming
	// majority of flows are mice, the majority of bytes come from
	// elephants ([5, 11, 33]).
	if frac := float64(mice) / n; frac < 0.75 {
		t.Fatalf("mice fraction = %.2f, want > 0.75", frac)
	}
	if frac := elephBytes / bytes; frac < 0.5 {
		t.Fatalf("elephant byte share = %.2f, want > 0.5", frac)
	}
}

func TestFlowSizeScale(t *testing.T) {
	a := NewFlowSizeDist(sim.NewRNG(9), 1)
	b := NewFlowSizeDist(sim.NewRNG(9), 10)
	for i := 0; i < 100; i++ {
		x, y := a.Sample(), b.Sample()
		if y < x {
			t.Fatalf("scaled sample %d < unscaled %d", y, x)
		}
	}
}

func TestTraceWorkloadRuns(t *testing.T) {
	c := testCluster(cluster.Presto, 8)
	res := StartTrace(c, c.RNG(), 2*sim.Millisecond, 1, 40*sim.Millisecond)
	c.Eng.Run(100 * sim.Millisecond)
	if res.Flows < 20 {
		t.Fatalf("only %d flows started", res.Flows)
	}
	if res.MiceFCT.N() == 0 {
		t.Fatal("no mice completed")
	}
}

func TestNorthSouthTraffic(t *testing.T) {
	tp := topo.TwoTierClos(2, 2, 2, 1, topo.LinkConfig{})
	var remotes []packet.HostID
	for _, s := range tp.Spines {
		remotes = append(remotes, tp.AddSpineHost(s, 100e6, 5*sim.Microsecond))
	}
	c := cluster.New(cluster.Config{Topology: tp, Scheme: cluster.Presto, Seed: 9})
	StartNorthSouth(c, c.RNG(), remotes, 2*sim.Millisecond, 30*sim.Millisecond)
	c.Eng.Run(60 * sim.Millisecond)
	// Remote users must have received traffic through the spines.
	got := uint64(0)
	for _, r := range remotes {
		got += c.Hosts[r].NIC.Stats.RxPackets
	}
	if got == 0 {
		t.Fatal("no north-south packets delivered")
	}
}

func TestRandomWorkloadOnSingleSwitch(t *testing.T) {
	// Regression: the Optimal baseline (all hosts on one switch) must
	// not spin forever looking for a cross-pod destination.
	c := cluster.New(cluster.Config{
		Topology: topo.SingleSwitch(8, topo.LinkConfig{}),
		Scheme:   cluster.ECMP,
		Seed:     5,
	})
	e := Random(c, c.RNG())
	if len(e.Conns) != 8 {
		t.Fatalf("%d flows", len(e.Conns))
	}
	for _, conn := range e.Conns {
		if conn.Src == conn.Dst {
			t.Fatal("self-flow on single switch")
		}
	}
	b := RandomBijection(c, c.RNG())
	if len(b.Conns) != 8 {
		t.Fatalf("bijection %d flows", len(b.Conns))
	}
	res := StartTrace(c, c.RNG(), 2*sim.Millisecond, 1, 10*sim.Millisecond)
	c.Eng.Run(20 * sim.Millisecond)
	if res.Flows == 0 {
		t.Fatal("trace workload idle on single switch")
	}
}

func TestDegenerateTopologiesCannotHangWorkloads(t *testing.T) {
	// Regression: a topology where the cross-pod constraint is
	// unsatisfiable — two leaves but every non-remote server on one of
	// them — used to spin forever in the draw-until-valid loops. All
	// generators must terminate with bounded, deterministic fallbacks.
	top := topo.TwoTierClos(1, 2, 1, 1, topo.LinkConfig{})
	top.MarkRemote(packet.HostID(1)) // leaves host 0 as the only server
	c := cluster.New(cluster.Config{Topology: top, Scheme: cluster.Presto, Seed: 7})

	if e := Random(c, c.RNG()); len(e.Conns) != 0 {
		t.Fatalf("Random on a 1-server topology opened %d flows, want 0", len(e.Conns))
	}
	if e := RandomBijection(c, c.RNG()); len(e.Conns) != 0 {
		t.Fatalf("RandomBijection on a 1-server topology opened %d flows, want 0", len(e.Conns))
	}
	res := StartTrace(c, c.RNG(), sim.Millisecond, 1, 5*sim.Millisecond)
	c.Eng.Run(10 * sim.Millisecond)
	if res.Flows != 0 {
		t.Fatalf("trace generator opened %d flows with no valid destination", res.Flows)
	}
}

func TestCrossPodPermutationDerangementFallback(t *testing.T) {
	// Three servers, two of them sharing a leaf: no permutation can be
	// fully cross-pod (pigeonhole), so the fallback derangement must
	// kick in — deterministic, and free of fixed points.
	top := topo.TwoTierClos(1, 2, 1, 1, topo.LinkConfig{})
	top.AddLeafHost(top.Leaves[0], 10_000_000_000, 0) // host 2 joins leaf 0
	c := cluster.New(cluster.Config{Topology: top, Scheme: cluster.Presto, Seed: 11})

	p := crossPodPermutation(c, c.RNG(), 3)
	q := crossPodPermutation(c, c.RNG(), 3)
	for i := range p {
		if p[i] == i {
			t.Fatalf("fallback permutation %v has a fixed point at %d", p, i)
		}
		if p[i] != q[i] {
			t.Fatalf("fallback not deterministic: %v vs %v", p, q)
		}
	}
}
