// Command prestobench runs the repository's hot-path microbenchmark
// suite (internal/bench) outside `go test` and writes a
// machine-readable BENCH_*.json perf artifact:
//
//	go run ./cmd/prestobench -out BENCH_fresh.json
//
// Each record carries ns/op, allocs/op, B/op, and any b.ReportMetric
// extras. With -gate it additionally compares allocs/op against a
// committed baseline (BENCH_0.json) and exits non-zero when a gated
// benchmark regressed by more than -gate-threshold-pct (default 20%) —
// the CI bench-smoke job. ns/op is recorded for the trajectory but
// never gated: shared CI runners make wall-time thresholds flaky,
// while allocation counts are deterministic.
//
// The BENCH_*.json schema ("presto-bench/1"):
//
//	{
//	  "schema": "presto-bench/1",
//	  "go": "go1.x",              // toolchain that produced the numbers
//	  "short": false,             // reduced end-to-end windows?
//	  "benchmarks": [
//	    {"name": "...", "iterations": N, "ns_per_op": f,
//	     "allocs_per_op": n, "bytes_per_op": n, "gated": bool,
//	     "extra": {"Gbps": f, ...}},        // optional
//	  ],
//	  "before": {...}             // optional: pre-optimization numbers,
//	}                             // kept for historical comparison only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	presto "presto"
	"presto/internal/bench"
	"presto/internal/sim"
)

// Record is one benchmark's measurement in the JSON artifact.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Gated       bool               `json:"gated"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Artifact is the BENCH_*.json file ("presto-bench/1" schema).
type Artifact struct {
	Schema     string   `json:"schema"`
	Go         string   `json:"go"`
	Short      bool     `json:"short"`
	Benchmarks []Record `json:"benchmarks"`
	// Before optionally preserves pre-optimization measurements for the
	// historical record; the gate ignores it.
	Before map[string]Record `json:"before,omitempty"`
}

const schema = "presto-bench/1"

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prestobench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("prestobench", flag.ContinueOnError)
	short := fs.Bool("short", false, "reduce end-to-end benchmark windows (CI smoke mode)")
	out := fs.String("out", "", "write the presto-bench/1 JSON artifact to this path")
	gate := fs.String("gate", "", "compare gated benchmarks' allocs/op against this baseline JSON; exit non-zero on regression")
	threshold := fs.Float64("gate-threshold-pct", 20, "allowed allocs/op regression over the baseline, percent")
	filter := fs.String("run", "", "only run benchmarks whose name contains this substring")
	speedupFloor := fs.Float64("speedup-floor", 0, "require the sharded pod-scale run to be at least this multiple faster than serial (0 = off); bit-identity is verified either way")
	speedupMinCPUs := fs.Int("speedup-min-cpus", 8, "skip the speedup ratio check (not the identity check) on machines with fewer CPUs")
	if err := fs.Parse(args); err != nil {
		return err
	}

	bench.Short = *short
	art := Artifact{Schema: schema, Go: runtime.Version(), Short: *short}
	for _, spec := range bench.Suite() {
		if *filter != "" && !strings.Contains(spec.Name, *filter) {
			continue
		}
		r := testing.Benchmark(spec.Fn)
		if r.N == 0 {
			return fmt.Errorf("benchmark %s failed (zero iterations)", spec.Name)
		}
		rec := Record{
			Name:        spec.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Gated:       spec.Gated,
		}
		if len(r.Extra) > 0 {
			rec.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				rec.Extra[k] = v
			}
		}
		art.Benchmarks = append(art.Benchmarks, rec)
		fmt.Fprintf(stdout, "%-24s %12.1f ns/op %8d B/op %6d allocs/op\n",
			rec.Name, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp)
	}
	if len(art.Benchmarks) == 0 {
		return fmt.Errorf("no benchmarks matched -run %q", *filter)
	}

	if *out != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}

	if *gate != "" {
		if err := gateAgainst(stdout, art, *gate, *threshold); err != nil {
			return err
		}
	}
	if *speedupFloor > 0 {
		return speedupGate(stdout, *speedupFloor, *speedupMinCPUs)
	}
	return nil
}

// speedupGate runs the pod-scale workload serial and sharded and fails
// when the sharded engine is less than floor× faster. Bit-identity
// between the two runs is checked unconditionally — divergence is a
// correctness bug regardless of hardware. The wall-clock ratio is only
// enforced when the machine has at least minCPUs CPUs: with fewer
// cores than shards the barriers cost wall time and no speedup is
// physically possible (e.g. single-core CI runners).
func speedupGate(stdout io.Writer, floor float64, minCPUs int) error {
	pods, hostsPerLeaf, shards := 8, 2, 8
	warmup, duration := bench.SpeedupWindow()
	s := measureShardSpeedup(pods, hostsPerLeaf, shards, warmup, duration)
	if !s.Identical {
		return fmt.Errorf("speedup gate: %d-shard run diverged from serial — the bit-identity contract is broken", s.Shards)
	}
	if runtime.NumCPU() < minCPUs {
		fmt.Fprintf(stdout, "speedup gate skipped: %d CPUs < %d (bit-identity verified: serial %v, sharded %v)\n",
			runtime.NumCPU(), minCPUs, s.Serial.Round(time.Millisecond), s.Sharded.Round(time.Millisecond))
		return nil
	}
	ratio := float64(s.Serial) / float64(s.Sharded)
	if ratio < floor {
		return fmt.Errorf("speedup gate: %d shards ran %.2fx faster than serial, floor is %.2fx (serial %v, sharded %v)",
			s.Shards, ratio, floor, s.Serial.Round(time.Millisecond), s.Sharded.Round(time.Millisecond))
	}
	fmt.Fprintf(stdout, "speedup gate passed: %d shards %.2fx faster than serial (floor %.2fx, serial %v, sharded %v)\n",
		s.Shards, ratio, floor, s.Serial.Round(time.Millisecond), s.Sharded.Round(time.Millisecond))
	return nil
}

// shardSpeedup is one serial-vs-sharded wall-clock comparison of the
// pod-scale workload, plus whether the two runs were bit-identical
// (they must be: that is the sharded engine's core contract).
type shardSpeedup struct {
	Shards          int
	Serial, Sharded time.Duration
	Identical       bool
}

// measureShardSpeedup runs the pod-scale workload once on the serial
// engine and once under `shards` shards, timing both. Wall-clock
// reads live here rather than internal/bench because the harness
// layer is exempt from the simclock analyzer and simulator packages
// are not.
func measureShardSpeedup(pods, hostsPerLeaf, shards int, warmup, duration sim.Time) shardSpeedup {
	opt := presto.Options{Seed: 1, Warmup: warmup, Duration: duration}
	t0 := time.Now()
	serial := presto.RunPodTraffic(presto.SysPresto, pods, hostsPerLeaf, opt)
	t1 := time.Now()
	opt.Shards = shards
	sharded := presto.RunPodTraffic(presto.SysPresto, pods, hostsPerLeaf, opt)
	t2 := time.Now()
	s := shardSpeedup{
		Shards:  sharded.Shards,
		Serial:  t1.Sub(t0),
		Sharded: t2.Sub(t1),
	}
	sharded.Shards = serial.Shards
	s.Identical = serial == sharded
	return s
}

// gateAgainst fails when any gated benchmark's allocs/op exceeds the
// baseline's by more than thresholdPct. A baseline of 0 allocs/op is a
// hard invariant: any allocation at all is a regression.
func gateAgainst(stdout io.Writer, fresh Artifact, baselinePath string, thresholdPct float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base Artifact
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	if base.Schema != schema {
		return fmt.Errorf("baseline %s has schema %q, want %q", baselinePath, base.Schema, schema)
	}
	byName := make(map[string]Record, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		byName[r.Name] = r
	}
	var regressions []string
	compared := 0
	for _, r := range fresh.Benchmarks {
		if !r.Gated {
			continue
		}
		b, ok := byName[r.Name]
		if !ok {
			continue // new benchmark: no baseline yet, next BENCH_N picks it up
		}
		compared++
		limit := float64(b.AllocsPerOp) * (1 + thresholdPct/100)
		if float64(r.AllocsPerOp) > limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d allocs/op vs baseline %d (limit %.1f)",
				r.Name, r.AllocsPerOp, b.AllocsPerOp, limit))
		}
	}
	if compared == 0 {
		return fmt.Errorf("gate compared zero benchmarks against %s", baselinePath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("allocs/op regression vs %s:\n  %s",
			baselinePath, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(stdout, "perf gate passed: %d gated benchmarks within %.0f%% of %s\n",
		compared, thresholdPct, baselinePath)
	return nil
}
