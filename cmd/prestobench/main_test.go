package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunWritesArtifactAndSelfGates runs a single cheap benchmark,
// checks the JSON artifact parses under the presto-bench/1 schema, and
// verifies a fresh run gates cleanly against its own output.
func TestRunWritesArtifactAndSelfGates(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	var sb strings.Builder
	if err := run([]string{"-short", "-run", "EngineTimerReset", "-out", out}, &sb); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, sb.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if art.Schema != schema {
		t.Fatalf("schema = %q, want %q", art.Schema, schema)
	}
	if len(art.Benchmarks) != 1 || art.Benchmarks[0].Name != "EngineTimerReset" {
		t.Fatalf("benchmarks = %+v, want exactly EngineTimerReset", art.Benchmarks)
	}
	if got := art.Benchmarks[0].AllocsPerOp; got != 0 {
		t.Fatalf("EngineTimerReset allocs/op = %d, want 0 (zero-alloc invariant)", got)
	}
	if art.Benchmarks[0].Iterations == 0 || art.Benchmarks[0].NsPerOp <= 0 {
		t.Fatalf("implausible measurement: %+v", art.Benchmarks[0])
	}

	// Self-gate: identical numbers must be within any threshold.
	sb.Reset()
	if err := run([]string{"-short", "-run", "EngineTimerReset", "-gate", out}, &sb); err != nil {
		t.Fatalf("self-gate failed: %v\noutput:\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "perf gate passed") {
		t.Fatalf("missing gate confirmation in output:\n%s", sb.String())
	}
}

// TestGateFlagsRegression fabricates a baseline with 0 allocs/op for a
// benchmark that allocates, and expects the gate to reject it.
func TestGateFlagsRegression(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	art := Artifact{
		Schema: schema,
		Go:     "go-test",
		Benchmarks: []Record{
			{Name: "ClusterEndToEnd", AllocsPerOp: 0, Gated: true},
		},
	}
	data, _ := json.Marshal(art)
	if err := os.WriteFile(base, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := Artifact{
		Schema: schema,
		Benchmarks: []Record{
			{Name: "ClusterEndToEnd", AllocsPerOp: 1000, Gated: true},
		},
	}
	var sb strings.Builder
	err := gateAgainst(&sb, fresh, base, 20)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("gate accepted a 0→1000 allocs/op regression (err=%v)", err)
	}
}
