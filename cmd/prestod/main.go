// Command prestod serves experiment campaigns over HTTP: a
// long-running daemon that accepts the same campaign specs
// cmd/experiments runs, schedules them on a bounded job queue with
// explicit backpressure, streams per-replica progress as NDJSON/SSE,
// and serves the finished artifacts byte-identical to a CLI run.
//
//	prestod -addr 127.0.0.1:7377 -data /var/lib/prestod
//
//	curl -d '{"experiments":"fig7","seeds":3}' localhost:7377/v1/jobs
//	curl -d '{"workload":"mice-heavy","seeds":2}' localhost:7377/v1/jobs
//	curl localhost:7377/v1/jobs/job-000000/events        # NDJSON stream
//	curl localhost:7377/v1/jobs/job-000000/artifacts/report.json
//
// SIGTERM/SIGINT drains gracefully: intake stops (readyz turns 503),
// running jobs get -drain-timeout to finish, stragglers are cancelled,
// and completed jobs' artifacts are flushed before exit. See
// cmd/prestoctl for the matching client.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"presto"
	"presto/internal/campaign"
	"presto/internal/server"
	"presto/internal/sim"
	wspec "presto/internal/workload/spec"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, nil))
}

// run is the testable entry point. ready, when non-nil, receives the
// bound listen address once the daemon accepts connections (tests use
// -addr 127.0.0.1:0). Exit code 0 on clean shutdown, 2 on usage or
// startup errors.
func run(args []string, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("prestod", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:7377", "listen address")
		dataDir      = fs.String("data", "", "artifact directory (default: a fresh temp dir)")
		queueDepth   = fs.Int("queue", 8, "job queue depth; a full queue rejects submissions with 429")
		workers      = fs.Int("workers", 1, "jobs executed concurrently (each runs its own replica pool)")
		ttl          = fs.Duration("ttl", time.Hour, "artifact retention after a job finishes (negative = keep forever)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "SIGTERM grace period for running jobs before they are cancelled")
		reqTimeout   = fs.Duration("request-timeout", 30*time.Second, "per-request timeout for non-streaming endpoints")
		cellTimeout  = fs.Duration("cell-timeout", 5*time.Minute, "default wall-clock budget per replica when the job spec sets none")
		quiet        = fs.Bool("q", false, "suppress per-job log lines")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(what string, err error) int {
		fmt.Fprintf(stderr, "prestod: %s: %v\n", what, err)
		return 2
	}

	// logf is shared with server worker goroutines via Config.Logf, so
	// writes must serialize: stderr may be any io.Writer in tests.
	var logMu sync.Mutex
	logf := func(format string, a ...any) {
		logMu.Lock()
		defer logMu.Unlock()
		fmt.Fprintf(stderr, "[prestod] "+format+"\n", a...)
	}
	jobLogf := logf
	if *quiet {
		jobLogf = nil
	}
	srv, err := server.New(server.Config{
		SpecBuilder:    specBuilder(*cellTimeout),
		DataDir:        *dataDir,
		QueueDepth:     *queueDepth,
		Workers:        *workers,
		ArtifactTTL:    *ttl,
		RequestTimeout: *reqTimeout,
		GitDescribe:    gitDescribe(),
		Logf:           jobLogf,
	})
	if err != nil {
		return fail("init", err)
	}
	defer srv.Close() //prestolint:allow errdrop -- process is exiting; the server logs its own shutdown failures

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail("listen", err)
	}
	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	logf("listening on %s (data dir %s, queue %d, workers %d)", ln.Addr(), srv.DataDir(), *queueDepth, *workers)
	if ready != nil {
		ready <- ln.Addr().String()
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fail("serve", err)
	case <-ctx.Done():
	}

	logf("signal received; draining (timeout %v)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		logf("drain: %v", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logf("shutdown: %v", err)
	}
	logf("drained; exiting")
	return 0
}

// specBuilder maps a JobRequest onto the same campaign spec
// cmd/experiments builds for identical flags, so server-side runs are
// byte-identical to CLI runs (the report carries no timing and result
// ordering is spec-determined, not scheduling-determined). A request
// carrying a workload spec (inline object, preset name, or spec path)
// sweeps it across the system lineup exactly like `experiments
// -workload`.
func specBuilder(defaultCellTimeout time.Duration) func(server.JobRequest) (*campaign.Spec, error) {
	return func(req server.JobRequest) (*campaign.Spec, error) {
		hasWorkload := len(req.Workload) > 0
		if req.Experiments == "" && !hasWorkload {
			return nil, fmt.Errorf(`missing "experiments" (e.g. "fig7" or "all") or "workload" (spec object, preset name, or spec path)`)
		}
		if req.Experiments != "" && hasWorkload {
			return nil, fmt.Errorf(`"experiments" and "workload" are mutually exclusive`)
		}
		opt := presto.Options{
			Duration: sim.FromDuration(time.Duration(req.Duration)),
			Warmup:   sim.FromDuration(time.Duration(req.Warmup)),
		}
		var schemes []string
		for _, s := range strings.Split(req.Scheme, ",") {
			if s = strings.TrimSpace(s); s != "" {
				schemes = append(schemes, s)
			}
		}
		var spec *campaign.Spec
		switch {
		case hasWorkload:
			ws, err := wspec.ResolveJSON(req.Workload)
			if err != nil {
				return nil, fmt.Errorf("workload: %w", err)
			}
			var systems []presto.System
			for _, s := range schemes {
				sys, err := presto.SystemFor(s)
				if err != nil {
					return nil, fmt.Errorf("scheme: %w", err)
				}
				systems = append(systems, sys)
			}
			spec = presto.SpecWorkloadCampaign(ws, systems, opt)
		case len(schemes) > 0:
			if req.Experiments != "scheme-matrix" {
				return nil, fmt.Errorf(`"scheme" needs "workload" or "experiments": "scheme-matrix"`)
			}
			var err error
			spec, err = presto.SchemeMatrixSpec(schemes, opt)
			if err != nil {
				return nil, fmt.Errorf("scheme: %w", err)
			}
		default:
			var err error
			spec, err = presto.CampaignSpec(req.Experiments, opt)
			if err != nil {
				return nil, err
			}
		}
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		nseeds := req.Seeds
		if nseeds <= 0 {
			nseeds = 1
		}
		spec.Seeds = campaign.Seeds(seed, nseeds)
		spec.Parallelism = req.Parallelism
		spec.CellTimeout = time.Duration(req.CellTimeout)
		if spec.CellTimeout <= 0 {
			spec.CellTimeout = defaultCellTimeout
		}
		return spec, nil
	}
}

// gitDescribe stamps job manifests with the repository state; empty
// outside a git checkout (mirrors cmd/experiments).
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
