package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"presto"
	"presto/internal/campaign"
	"presto/internal/server"
	"presto/internal/sim"
)

// TestServerRunMatchesCLIRun is the headline acceptance check: a real
// experiment campaign (fig5, the cheapest simulator cells) submitted
// through the daemon's spec builder and executed server-side at
// parallelism 4 with 2 concurrent server workers must produce a
// report.json byte-identical to the same spec run directly at
// parallelism 1 — the path cmd/experiments -out takes.
func TestServerRunMatchesCLIRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulator cells")
	}
	req := server.JobRequest{
		Experiments: "fig5",
		Seeds:       2,
		Parallelism: 4,
		Duration:    server.Duration(20 * time.Millisecond),
		Warmup:      server.Duration(5 * time.Millisecond),
	}

	// Reference: the exact sequence cmd/experiments performs.
	opt := presto.Options{
		Duration: sim.FromDuration(20 * time.Millisecond),
		Warmup:   sim.FromDuration(5 * time.Millisecond),
	}
	refSpec, err := presto.CampaignSpec("fig5", opt)
	if err != nil {
		t.Fatal(err)
	}
	refSpec.Seeds = campaign.Seeds(1, 2)
	refSpec.Parallelism = 1
	refSpec.CellTimeout = time.Minute
	refReport, err := presto.RunCampaign(refSpec)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := refReport.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}

	// Server side: same request through prestod's builder.
	srv, err := server.New(server.Config{
		SpecBuilder: specBuilder(time.Minute),
		DataDir:     t.TempDir(),
		Workers:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := &server.Client{BaseURL: ts.URL}
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateDone {
		t.Fatalf("job finished %s (error %q), want done", final.State, final.Error)
	}
	got, err := c.Artifact(ctx, st.ID, "report.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("server report.json differs from direct CLI-style run:\nserver %d bytes, direct %d bytes", len(got), want.Len())
	}
	if final.SpecHash != refReport.SpecHash {
		t.Errorf("spec hash: server %s, direct %s", final.SpecHash, refReport.SpecHash)
	}
}

// TestSpecBuilderDefaults checks the flag-parity defaults: seed 1, one
// seed replica, and the daemon's fallback cell timeout.
func TestSpecBuilderDefaults(t *testing.T) {
	build := specBuilder(90 * time.Second)
	spec, err := build(server.JobRequest{Experiments: "fig5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Seeds) != 1 || spec.Seeds[0] != 1 {
		t.Errorf("default seeds = %v, want [1]", spec.Seeds)
	}
	if spec.CellTimeout != 90*time.Second {
		t.Errorf("default cell timeout = %v, want 90s", spec.CellTimeout)
	}
	if _, err := build(server.JobRequest{}); err == nil {
		t.Error("empty experiments accepted, want error")
	}
	if _, err := build(server.JobRequest{Experiments: "nosuch"}); err == nil {
		t.Error("unknown experiment accepted, want error")
	}
}

// TestPrestodSIGTERMDrain boots the daemon on an ephemeral port, runs
// a real job through it, then delivers SIGTERM and requires a clean
// exit (code 0) within the drain deadline with artifacts intact.
func TestPrestodSIGTERMDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulator cells and delivers signals")
	}
	dataDir := t.TempDir()
	ready := make(chan string, 1)
	var stderr strings.Builder
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-data", dataDir,
			"-drain-timeout", "30s",
			"-cell-timeout", "1m",
		}, &stderr, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case code := <-done:
		t.Fatalf("daemon exited early with code %d\n%s", code, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := &server.Client{BaseURL: "http://" + addr}
	st, err := c.Submit(ctx, server.JobRequest{
		Experiments: "fig5",
		Duration:    server.Duration(10 * time.Millisecond),
		Warmup:      server.Duration(2 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateDone {
		t.Fatalf("job finished %s (error %q), want done", final.State, final.Error)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("exit code %d after SIGTERM, want 0\n%s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	// Completed artifacts survive the drain.
	if _, err := os.Stat(dataDir + "/" + st.ID + "/report.json"); err != nil {
		t.Errorf("artifact missing after drain: %v", err)
	}
	if !strings.Contains(stderr.String(), "drained; exiting") {
		t.Errorf("missing drain log line in stderr:\n%s", stderr.String())
	}
}
