// Command prestosim runs one load-balancing system against one
// workload on the emulated testbed and prints the measured metrics —
// a quick way to poke at the reproduction:
//
//	prestosim -system presto -workload stride -duration 200ms
//	prestosim -system ecmp -workload bijection -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"presto"
	"presto/internal/sim"
)

func main() {
	var (
		system   = flag.String("system", "presto", "ecmp | mptcp | presto | optimal | flowlet100 | flowlet500 | presto-ecmp | per-packet")
		workload = flag.String("workload", "stride", "stride | shuffle | random | bijection")
		duration = flag.Duration("duration", 200*time.Millisecond, "measurement window (simulated)")
		warmup   = flag.Duration("warmup", 50*time.Millisecond, "warmup before measurement (simulated)")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	sys, err := parseSystem(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	kind, err := parseWorkload(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opt := presto.Options{
		Seed:     *seed,
		Duration: sim.Time(duration.Nanoseconds()),
		Warmup:   sim.Time(warmup.Nanoseconds()),
	}

	start := time.Now()
	res := presto.RunWorkload(sys, kind, opt)
	elapsed := time.Since(start)

	fmt.Printf("system=%v workload=%v seed=%d duration=%v\n", sys, kind, *seed, *duration)
	fmt.Printf("  elephant throughput: %.2f Gbps/flow (fairness %.3f)\n", res.MeanTput, res.Fairness)
	fmt.Printf("  loss rate:           %.4f%%\n", res.LossRate*100)
	if res.RTT != nil && res.RTT.N() > 0 {
		fmt.Printf("  RTT (ms):            p50=%.3f p90=%.3f p99=%.3f p99.9=%.3f (n=%d)\n",
			res.RTT.Percentile(50), res.RTT.Percentile(90), res.RTT.Percentile(99), res.RTT.Percentile(99.9), res.RTT.N())
	}
	if res.FCT != nil && res.FCT.N() > 0 {
		fmt.Printf("  mice FCT (ms):       p50=%.3f p90=%.3f p99=%.3f p99.9=%.3f (n=%d, timeouts=%d)\n",
			res.FCT.Percentile(50), res.FCT.Percentile(90), res.FCT.Percentile(99), res.FCT.Percentile(99.9), res.FCT.N(), res.MiceTimeouts)
	}
	fmt.Printf("  wall time:           %v\n", elapsed.Round(time.Millisecond))
}

func parseSystem(s string) (presto.System, error) {
	switch strings.ToLower(s) {
	case "ecmp":
		return presto.SysECMP, nil
	case "mptcp":
		return presto.SysMPTCP, nil
	case "presto":
		return presto.SysPresto, nil
	case "optimal":
		return presto.SysOptimal, nil
	case "flowlet100":
		return presto.SysFlowlet100, nil
	case "flowlet500":
		return presto.SysFlowlet500, nil
	case "presto-ecmp", "prestoecmp":
		return presto.SysPrestoECMP, nil
	case "per-packet", "perpacket":
		return presto.SysPerPacket, nil
	}
	return 0, fmt.Errorf("unknown system %q", s)
}

func parseWorkload(s string) (presto.WorkloadKind, error) {
	switch strings.ToLower(s) {
	case "stride":
		return presto.Stride, nil
	case "shuffle":
		return presto.Shuffle, nil
	case "random":
		return presto.Random, nil
	case "bijection":
		return presto.Bijection, nil
	}
	return 0, fmt.Errorf("unknown workload %q", s)
}
