// Command prestosim runs one load-balancing system against one
// workload on the emulated testbed and prints the measured metrics —
// a quick way to poke at the reproduction:
//
//	prestosim -system presto -workload stride -duration 200ms
//	prestosim -system ecmp -workload bijection -seed 7
//	prestosim -system presto -workload stride -seeds 5   # mean ±stddev over 5 seeds
//	prestosim -system presto -workload mice-heavy        # declarative preset
//	prestosim -system ecmp -workload examples/specs/incast32.json
//
// -workload accepts the built-in patterns (stride, shuffle, random,
// bijection), a named workload-spec preset (elephants, mice-heavy,
// incast32, trace), or a path to a presto-workload/1 spec JSON file.
//
// With -seeds N > 1 the run is replicated over seeds seed..seed+N-1 on
// the campaign worker pool (-parallel workers) and every metric is
// reported as a mean/stddev/min–max envelope.
//
// Observability flags: -trace writes a Chrome trace-event file (open
// in Perfetto / chrome://tracing), -events a JSON Lines event log,
// -snapshot a per-component counter dump, and -v prints the snapshot
// summary table. -cpuprofile/-memprofile capture pprof profiles of the
// simulator itself.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"presto"
	"presto/internal/campaign"
	"presto/internal/scheme"
	"presto/internal/sim"
	"presto/internal/telemetry"
	wspec "presto/internal/workload/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("prestosim", flag.ContinueOnError)
	var (
		system     = fs.String("system", "presto", "ecmp | mptcp | presto | optimal | flowlet100 | flowlet500 | presto-ecmp | per-packet, or any scheme spec")
		schemeF    = fs.String("scheme", "", "scheme registry spec, name or name:k=v,... (e.g. diffflow:threshold=512KB); overrides -system")
		workload   = fs.String("workload", "stride", "stride | shuffle | random | bijection | podtraffic, a workload-spec preset, or a spec.json path")
		shards     = fs.Int("shards", 1, "per-pod engine shards for -workload podtraffic; results are bit-identical to serial, 1 = serial")
		pods       = fs.Int("pods", 4, "pod count for -workload podtraffic (2 aggs, 2 leaves per pod)")
		hostsLeaf  = fs.Int("hosts-per-leaf", 2, "hosts per leaf for -workload podtraffic")
		duration   = fs.Duration("duration", 200*time.Millisecond, "measurement window (simulated)")
		warmup     = fs.Duration("warmup", 50*time.Millisecond, "warmup before measurement (simulated)")
		seed       = fs.Uint64("seed", 1, "random seed (base seed with -seeds > 1)")
		seeds      = fs.Int("seeds", 1, "seed replicas; > 1 reports mean ±stddev envelopes per metric")
		parallel   = fs.Int("parallel", 0, "worker pool size for -seeds > 1; 0 = GOMAXPROCS")
		tracePath  = fs.String("trace", "", "write Chrome trace-event JSON to this file")
		eventsPath = fs.String("events", "", "write the raw event log as JSON Lines to this file")
		snapPath   = fs.String("snapshot", "", "write the telemetry snapshot JSON to this file")
		verbose    = fs.Bool("v", false, "print the telemetry snapshot summary table")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec := *system
	if *schemeF != "" {
		spec = *schemeF
	}
	sys, err := parseSystem(spec)
	if err != nil {
		return err
	}
	if *workload == "podtraffic" {
		return runPodTraffic(stdout, sys, *pods, *hostsLeaf, *shards, *seed, *seeds,
			sim.FromDuration(*warmup), sim.FromDuration(*duration))
	}
	kind, ws, err := parseWorkloadOrSpec(*workload)
	if err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close() //prestolint:allow errdrop -- profile file is auxiliary diagnostics; StopCPUProfile already flushed before this close runs
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	// Telemetry is wired only when some output wants it; otherwise the
	// run takes the nil-tracer zero-overhead path.
	var reg *telemetry.Registry
	if *tracePath != "" || *eventsPath != "" || *snapPath != "" || *verbose {
		var tr *telemetry.Tracer
		if *tracePath != "" || *eventsPath != "" {
			tr = telemetry.NewTracer()
		}
		reg = telemetry.NewRegistry(tr)
	}

	opt := presto.Options{
		Seed:      *seed,
		Duration:  sim.FromDuration(*duration),
		Warmup:    sim.FromDuration(*warmup),
		Telemetry: reg,
	}

	if *seeds > 1 {
		return runReplicated(stdout, sys, kind, ws, opt, *seed, *seeds, *parallel)
	}

	start := time.Now()
	var res presto.LoadResult
	var clients []wspec.ClientResult
	if ws != nil {
		res, clients, err = presto.RunSpecWorkload(sys, ws, opt)
		if err != nil {
			return err
		}
	} else {
		res = presto.RunWorkload(sys, kind, opt)
	}
	elapsed := time.Since(start)

	fmt.Fprintf(stdout, "system=%v workload=%v seed=%d duration=%v\n", sys, workloadName(kind, ws), *seed, *duration)
	fmt.Fprintf(stdout, "  elephant throughput: %.2f Gbps/flow (fairness %.3f)\n", res.MeanTput, res.Fairness)
	fmt.Fprintf(stdout, "  loss rate:           %.4f%%\n", res.LossRate*100)
	if res.RTT != nil && res.RTT.N() > 0 {
		fmt.Fprintf(stdout, "  RTT (ms):            p50=%.3f p90=%.3f p99=%.3f p99.9=%.3f (n=%d)\n",
			res.RTT.Percentile(50), res.RTT.Percentile(90), res.RTT.Percentile(99), res.RTT.Percentile(99.9), res.RTT.N())
	}
	if res.FCT != nil && res.FCT.N() > 0 {
		fmt.Fprintf(stdout, "  mice FCT (ms):       p50=%.3f p90=%.3f p99=%.3f p99.9=%.3f (n=%d, timeouts=%d)\n",
			res.FCT.Percentile(50), res.FCT.Percentile(90), res.FCT.Percentile(99), res.FCT.Percentile(99.9), res.FCT.N(), res.MiceTimeouts)
	}
	for _, cr := range clients {
		fmt.Fprintf(stdout, "  client %-13s started=%d finished=%d timeouts=%d bytes=%d",
			cr.ID+":", cr.Started, cr.Finished, cr.Timeouts, cr.BytesMoved)
		if cr.FCT != nil && cr.FCT.N() > 0 {
			fmt.Fprintf(stdout, " fct_ms_p50=%.3f fct_ms_p99=%.3f", cr.FCT.Percentile(50), cr.FCT.Percentile(99))
		}
		if cr.Tput > 0 {
			fmt.Fprintf(stdout, " tput_gbps=%.2f", cr.Tput)
		}
		fmt.Fprintln(stdout)
	}
	fmt.Fprintf(stdout, "  wall time:           %v\n", elapsed.Round(time.Millisecond))

	if err := writeTelemetry(reg, res.Telemetry, *tracePath, *eventsPath, *snapPath); err != nil {
		return err
	}
	if *verbose && res.Telemetry != nil {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, res.Telemetry.Summary())
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer f.Close() //prestolint:allow errdrop -- profile file is auxiliary diagnostics; WriteHeapProfile's error is already checked
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// runPodTraffic drives the pod-scale cross-pod elephant experiment.
// The -shards knob partitions the engine per pod; any shard count is
// bit-identical to serial, so it only trades wall-clock time.
func runPodTraffic(stdout io.Writer, sys presto.System, pods, hostsPerLeaf, shards int, seed uint64, seeds int, warmup, duration sim.Time) error {
	if seeds > 1 {
		return fmt.Errorf("-workload podtraffic runs a single seed; use cmd/experiments -run podtraffic -seeds %d", seeds)
	}
	opt := presto.Options{
		Seed:     seed,
		Warmup:   warmup,
		Duration: duration,
		Shards:   shards,
	}
	start := time.Now()
	res := presto.RunPodTraffic(sys, pods, hostsPerLeaf, opt)
	elapsed := time.Since(start)
	fmt.Fprintf(stdout, "system=%v workload=podtraffic pods=%d hosts=%d shards=%d seed=%d duration=%v\n",
		sys, res.Pods, res.Hosts, res.Shards, seed, duration.AsDuration())
	fmt.Fprintf(stdout, "  elephant throughput: %.2f Gbps/flow (fairness %.3f)\n", res.MeanTput, res.Fairness)
	fmt.Fprintf(stdout, "  loss rate:           %.4f%%\n", res.LossRate*100)
	fmt.Fprintf(stdout, "  delivered packets:   %d\n", res.Delivered)
	fmt.Fprintf(stdout, "  engine events:       %d\n", res.Events)
	fmt.Fprintf(stdout, "  wall time:           %v\n", elapsed.Round(time.Millisecond))
	return nil
}

// runReplicated executes the system × workload as a one-cell campaign
// over N seeds and prints per-metric envelopes.
func runReplicated(stdout io.Writer, sys presto.System, kind presto.WorkloadKind, ws *wspec.Spec, opt presto.Options, seed uint64, seeds, parallel int) error {
	// Per-run telemetry registries are not safe across concurrent
	// replicas; the single-seed path keeps full telemetry support.
	opt.Telemetry = nil
	cell := presto.WorkloadCell(sys, kind, opt)
	if ws != nil {
		cell = presto.SpecWorkloadCell(sys, ws, opt)
	}
	spec := &campaign.Spec{
		Name:        "prestosim",
		Cells:       []campaign.Cell{cell},
		Seeds:       campaign.Seeds(seed, seeds),
		Parallelism: parallel,
		Progress:    os.Stderr,
	}
	report, err := presto.RunCampaign(spec)
	if err != nil {
		return err
	}
	if failed := report.FailedReplicas(); len(failed) > 0 {
		return fmt.Errorf("%d replica(s) failed, first: %s seed=%d: %s", len(failed), failed[0].Cell, failed[0].Seed, failed[0].Err)
	}
	res := &report.Cells[0]
	fmt.Fprintf(stdout, "system=%v workload=%v seeds=%d..%d (n=%d)\n", sys, workloadName(kind, ws), seed, seed+uint64(seeds)-1, seeds)
	names := make([]string, 0, len(res.Envelopes))
	for k := range res.Envelopes {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		e := res.Envelopes[k]
		fmt.Fprintf(stdout, "  %-16s %s\n", k, e.String())
	}
	return nil
}

// writeTelemetry exports the tracer and snapshot to the requested
// files (shared with cmd/experiments' flag handling in spirit).
func writeTelemetry(reg *telemetry.Registry, snap *telemetry.Snapshot, tracePath, eventsPath, snapPath string) error {
	tr := reg.Tracer()
	if tracePath != "" {
		if err := telemetry.WriteFile(tracePath, tr.WriteChromeTrace); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	if eventsPath != "" {
		if err := telemetry.WriteFile(eventsPath, tr.WriteJSONL); err != nil {
			return fmt.Errorf("writing events: %w", err)
		}
	}
	if snapPath != "" && snap != nil {
		if err := telemetry.WriteFile(snapPath, snap.WriteJSON); err != nil {
			return fmt.Errorf("writing snapshot: %w", err)
		}
	}
	return nil
}

func parseSystem(s string) (presto.System, error) {
	switch strings.ToLower(s) {
	case "ecmp":
		return presto.SysECMP, nil
	case "mptcp":
		return presto.SysMPTCP, nil
	case "presto":
		return presto.SysPresto, nil
	case "optimal":
		return presto.SysOptimal, nil
	case "flowlet100":
		return presto.SysFlowlet100, nil
	case "flowlet500":
		return presto.SysFlowlet500, nil
	case "presto-ecmp", "prestoecmp":
		return presto.SysPrestoECMP, nil
	case "per-packet", "perpacket":
		return presto.SysPerPacket, nil
	}
	// Fall back to the scheme registry: any registered scheme (plus
	// params, e.g. "diffflow:threshold=512KB") is a valid system.
	sys, err := presto.SystemFor(s)
	if err == nil {
		return sys, nil
	}
	// A known scheme with bad params gets the registry's own error
	// (which names the offending key/bound); only an unrecognized
	// name gets the full lineup listing.
	name := s
	if i := strings.IndexByte(name, ':'); i >= 0 {
		name = name[:i]
	}
	if _, getErr := scheme.Get(strings.TrimSpace(name)); getErr == nil {
		return presto.System{}, err
	}
	return presto.System{}, fmt.Errorf("unknown system %q (paper systems: ecmp | mptcp | presto | optimal | flowlet100 | flowlet500 | presto-ecmp | per-packet; or any scheme spec: %s)",
		s, strings.Join(scheme.Names(), " | "))
}

// parseWorkloadOrSpec maps the -workload value onto either a built-in
// pattern (ws == nil) or a declarative workload spec resolved from a
// preset name or a spec.json path (ws != nil, kind unused).
func parseWorkloadOrSpec(s string) (presto.WorkloadKind, *wspec.Spec, error) {
	if kind, err := parseWorkload(s); err == nil {
		return kind, nil, nil
	}
	ws, err := wspec.Resolve(s)
	if err != nil {
		return 0, nil, fmt.Errorf("workload %q is neither a built-in pattern (stride | shuffle | random | bijection) nor a workload spec: %v", s, err)
	}
	return 0, ws, nil
}

// workloadName renders the workload for the result header: the
// pattern name, or the spec's name plus hash so runs are attributable
// to an exact workload definition.
func workloadName(kind presto.WorkloadKind, ws *wspec.Spec) string {
	if ws != nil {
		return fmt.Sprintf("%s(spec %s)", ws.Name, ws.Hash())
	}
	return fmt.Sprint(kind)
}

func parseWorkload(s string) (presto.WorkloadKind, error) {
	switch strings.ToLower(s) {
	case "stride":
		return presto.Stride, nil
	case "shuffle":
		return presto.Shuffle, nil
	case "random":
		return presto.Random, nil
	case "bijection":
		return presto.Bijection, nil
	}
	return 0, fmt.Errorf("unknown workload %q", s)
}
