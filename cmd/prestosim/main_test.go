package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseSystemAll(t *testing.T) {
	for _, s := range []string{"ecmp", "mptcp", "presto", "optimal", "flowlet100",
		"flowlet500", "presto-ecmp", "per-packet"} {
		if _, err := parseSystem(s); err != nil {
			t.Errorf("parseSystem(%q): %v", s, err)
		}
	}
	if _, err := parseSystem("bogus"); err == nil {
		t.Error("parseSystem accepted bogus system")
	}
}

func TestParseWorkloadAll(t *testing.T) {
	for _, w := range []string{"stride", "shuffle", "random", "bijection"} {
		if _, err := parseWorkload(w); err != nil {
			t.Errorf("parseWorkload(%q): %v", w, err)
		}
	}
	if _, err := parseWorkload("bogus"); err == nil {
		t.Error("parseWorkload accepted bogus workload")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-system", "nope"}, &out); err == nil {
		t.Error("bad -system accepted")
	}
	if err := run([]string{"-notaflag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

// TestRunEverySystem smoke-runs each -system value over a tiny window.
func TestRunEverySystem(t *testing.T) {
	for _, sys := range []string{"ecmp", "mptcp", "presto", "optimal", "flowlet100",
		"flowlet500", "presto-ecmp", "per-packet"} {
		var out bytes.Buffer
		err := run([]string{
			"-system", sys, "-workload", "stride",
			"-warmup", "5ms", "-duration", "10ms",
		}, &out)
		if err != nil {
			t.Fatalf("system %s: %v", sys, err)
		}
		if !strings.Contains(out.String(), "elephant throughput") {
			t.Fatalf("system %s: missing output:\n%s", sys, out.String())
		}
	}
}

// TestRunTraceExport runs the flagship invocation from the README and
// parses the emitted Chrome trace back: it must be valid JSON holding
// at least one FlowcellEmit and one GROFlush with a populated reason.
func TestRunTraceExport(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "out.json")
	eventsPath := filepath.Join(dir, "events.jsonl")
	snapPath := filepath.Join(dir, "snap.json")
	var out bytes.Buffer
	err := run([]string{
		"-system", "presto", "-workload", "stride",
		"-warmup", "5ms", "-duration", "10ms",
		"-trace", tracePath, "-events", eventsPath, "-snapshot", snapPath, "-v",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace is not valid Chrome trace JSON: %v", err)
	}
	var flowcells, flushes int
	for _, ev := range trace.TraceEvents {
		if ev.Phase != "i" {
			continue
		}
		switch ev.Name {
		case "FlowcellEmit":
			flowcells++
		case "GROFlush":
			if r, _ := ev.Args["reason"].(string); r == "" {
				t.Fatalf("GROFlush missing reason: %v", ev.Args)
			}
			flushes++
		}
	}
	if flowcells < 1 || flushes < 1 {
		t.Fatalf("trace incomplete: %d FlowcellEmit, %d GROFlush", flowcells, flushes)
	}

	// Events file: every line must be standalone JSON.
	evRaw, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(evRaw), []byte("\n"))
	if len(lines) == 0 {
		t.Fatal("empty events file")
	}
	var rec map[string]any
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatalf("bad JSONL first line: %v", err)
	}

	// Snapshot file: valid JSON with components.
	snapRaw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Components map[string]map[string]any `json:"components"`
	}
	if err := json.Unmarshal(snapRaw, &snap); err != nil {
		t.Fatalf("bad snapshot JSON: %v", err)
	}
	if len(snap.Components) == 0 {
		t.Fatal("snapshot has no components")
	}
	if _, ok := snap.Components["engine"]; !ok {
		t.Fatal("snapshot missing engine probe")
	}

	// -v printed the summary table.
	if !strings.Contains(out.String(), "component") || !strings.Contains(out.String(), "peak_pending") {
		t.Fatalf("-v summary missing:\n%s", out.String())
	}
}

// TestRunSeedReplicas checks -seeds N prints per-metric envelopes and
// that replicated output is deterministic across -parallel settings.
func TestRunSeedReplicas(t *testing.T) {
	replicated := func(parallel string) string {
		var out bytes.Buffer
		err := run([]string{
			"-system", "presto", "-workload", "stride",
			"-warmup", "5ms", "-duration", "10ms",
			"-seeds", "3", "-parallel", parallel,
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	serial := replicated("1")
	if !strings.Contains(serial, "seeds=1..3 (n=3)") {
		t.Fatalf("missing seed range header:\n%s", serial)
	}
	for _, metric := range []string{"tput_gbps", "loss_pct", "fairness"} {
		if !strings.Contains(serial, metric) {
			t.Errorf("envelope output missing %s:\n%s", metric, serial)
		}
	}
	if got := replicated("4"); got != serial {
		t.Errorf("-parallel 4 output differs from -parallel 1:\n--- serial ---\n%s--- parallel ---\n%s", serial, got)
	}
}
