package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"presto/internal/campaign"
	"presto/internal/metrics"
	"presto/internal/server"
)

// testDaemon starts an in-process daemon backed by a tiny synthetic
// two-cell campaign and returns its base URL.
func testDaemon(t *testing.T) string {
	t.Helper()
	build := func(req server.JobRequest) (*campaign.Spec, error) {
		cell := func(id string, base float64) campaign.Cell {
			return campaign.Cell{
				Experiment: "synth",
				ID:         id,
				Run: func(seed uint64) (campaign.Result, error) {
					d := &metrics.Dist{}
					for k := 0; k < 50; k++ {
						d.Add(base + float64(seed) + float64(k))
					}
					return campaign.Result{
						Metrics: campaign.Values{"v": base * float64(seed)},
						Dists:   map[string]*metrics.Dist{"lat": d},
					}, nil
				},
			}
		}
		seeds := req.Seeds
		if seeds <= 0 {
			seeds = 1
		}
		return &campaign.Spec{
			Cells:       []campaign.Cell{cell("synth/a", 3), cell("synth/b", 11)},
			Seeds:       campaign.Seeds(1, seeds),
			Parallelism: req.Parallelism,
			CellTimeout: 30 * time.Second,
		}, nil
	}
	srv, err := server.New(server.Config{SpecBuilder: build, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { srv.Close(); ts.Close() })
	return ts.URL
}

func runCtl(t *testing.T, url string, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	code = run(ctx, append([]string{"-addr", url}, args...), &out, &errb, strings.NewReader(stdin))
	return code, out.String(), errb.String()
}

func TestSubmitWaitFetch(t *testing.T) {
	url := testDaemon(t)
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(`{"experiments":"synth","seeds":2}`), 0o644); err != nil {
		t.Fatal(err)
	}

	code, out, errb := runCtl(t, url, "", "submit", "-wait", specPath)
	if code != 0 {
		t.Fatalf("submit -wait exited %d\nstderr: %s", code, errb)
	}
	var st server.JobStatus
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatalf("submit -wait stdout is not a job JSON: %v\n%s", err, out)
	}
	if st.State != server.StateDone {
		t.Fatalf("job state %s, want done", st.State)
	}
	for _, want := range []string{"submitted", "running", "done"} {
		if !strings.Contains(errb, want) {
			t.Errorf("stderr missing %q:\n%s", want, errb)
		}
	}

	// fetch with no -dir streams report.json to stdout.
	code, out, _ = runCtl(t, url, "", "fetch", st.ID)
	if code != 0 {
		t.Fatalf("fetch exited %d", code)
	}
	var rep struct {
		Cells []struct {
			ID string `json:"id"`
		} `json:"cells"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil || len(rep.Cells) != 2 {
		t.Fatalf("fetched report.json: err=%v cells=%d\n%s", err, len(rep.Cells), out)
	}

	// fetch -dir downloads every artifact.
	outDir := filepath.Join(dir, "artifacts")
	code, _, _ = runCtl(t, url, "", "fetch", "-dir", outDir, st.ID)
	if code != 0 {
		t.Fatalf("fetch -dir exited %d", code)
	}
	for _, name := range []string{"manifest.json", "report.csv", "report.json"} {
		if _, err := os.Stat(filepath.Join(outDir, name)); err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
		}
	}

	// status and list round-trip.
	code, out, _ = runCtl(t, url, "", "status", st.ID)
	if code != 0 || !strings.Contains(out, `"done"`) {
		t.Errorf("status exited %d:\n%s", code, out)
	}
	code, out, _ = runCtl(t, url, "", "list")
	if code != 0 || !strings.Contains(out, st.ID) {
		t.Errorf("list exited %d:\n%s", code, out)
	}

	// events replays the full NDJSON history for a finished job.
	code, out, _ = runCtl(t, url, "", "events", st.ID)
	if code != 0 {
		t.Fatalf("events exited %d", code)
	}
	var states []string
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var ev server.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		if ev.Type == "state" {
			states = append(states, string(ev.State))
		}
	}
	if got := strings.Join(states, ","); got != "pending,running,done" {
		t.Errorf("event states %q, want pending,running,done", got)
	}
}

// TestStatsCommand exercises `prestoctl stats` one-shot and -follow
// against a finished job.
func TestStatsCommand(t *testing.T) {
	url := testDaemon(t)
	code, out, _ := runCtl(t, url, `{"experiments":"synth","seeds":2}`, "submit", "-")
	if code != 0 {
		t.Fatalf("submit exited %d", code)
	}
	var st server.JobStatus
	jsonMust(t, out, &st)
	if code, _, _ = runCtl(t, url, "", "wait", st.ID); code != 0 {
		t.Fatalf("wait exited %d", code)
	}

	code, out, _ = runCtl(t, url, "", "stats", st.ID)
	if code != 0 {
		t.Fatalf("stats exited %d", code)
	}
	var frame server.StatsFrame
	jsonMust(t, out, &frame)
	if frame.State != server.StateDone || !frame.Final {
		t.Fatalf("frame = %+v, want done/final", frame)
	}
	if len(frame.Dists) != 1 || frame.Dists[0].Name != "lat" || frame.Dists[0].N != 200 {
		t.Fatalf("dists = %+v, want lat with 200 samples", frame.Dists)
	}
	if d := frame.Dists[0]; d.P50 <= 0 || d.P999 < d.P50 {
		t.Fatalf("bad percentiles: %+v", d)
	}

	// -follow on a terminal job delivers the final frame and exits.
	code, out, _ = runCtl(t, url, "", "stats", "-follow", st.ID)
	if code != 0 {
		t.Fatalf("stats -follow exited %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	jsonMust(t, lines[len(lines)-1], &frame)
	if frame.State != server.StateDone {
		t.Fatalf("followed frame state = %s", frame.State)
	}

	// Unknown job → exit 2.
	if code, _, _ = runCtl(t, url, "", "stats", "job-999999"); code != 2 {
		t.Fatalf("stats on unknown job exited %d, want 2", code)
	}
}

func TestSubmitFromStdin(t *testing.T) {
	url := testDaemon(t)
	code, out, _ := runCtl(t, url, `{"experiments":"synth"}`, "submit", "-")
	if code != 0 {
		t.Fatalf("submit - exited %d", code)
	}
	var st server.JobStatus
	if err := json.Unmarshal([]byte(out), &st); err != nil || st.ID == "" {
		t.Fatalf("submit stdout: err=%v\n%s", err, out)
	}
	// wait on the submitted ID reaches done with exit 0.
	code, _, _ = runCtl(t, url, "", "wait", st.ID)
	if code != 0 {
		t.Errorf("wait exited %d, want 0", code)
	}
}

func TestCancelExitCode(t *testing.T) {
	url := testDaemon(t)
	// Submit against a daemon whose builder rejects the spec → exit 2.
	if code, _, _ := runCtl(t, url, `{`, "submit", "-"); code != 2 {
		t.Errorf("malformed spec exited %d, want 2", code)
	}
	// A cancelled pending job makes wait exit 1.
	code, out, _ := runCtl(t, url, `{"experiments":"synth"}`, "submit", "-")
	if code != 0 {
		t.Fatalf("submit exited %d", code)
	}
	var st server.JobStatus
	jsonMust(t, out, &st)
	if code, _, _ = runCtl(t, url, "", "cancel", st.ID); code != 0 {
		t.Fatalf("cancel exited %d", code)
	}
	code, _, errb := runCtl(t, url, "", "wait", st.ID)
	if code == 0 && !strings.Contains(errb, "cancelled") {
		// The job may have finished before the cancel landed; accept
		// either done (0) or cancelled (1), but not a transport error.
		t.Logf("job finished before cancel: %s", errb)
	}
	if code == 2 {
		t.Errorf("wait exited 2 (transport error): %s", errb)
	}
}

func TestUsageErrors(t *testing.T) {
	url := testDaemon(t)
	for _, args := range [][]string{
		{},
		{"nosuchcmd"},
		{"status"},
		{"fetch"},
		{"submit"},
	} {
		if code, _, _ := runCtl(t, url, "", args...); code != 2 {
			t.Errorf("args %v exited %d, want 2", args, code)
		}
	}
	// Unknown job → exit 2 with the server's error message.
	code, _, errb := runCtl(t, url, "", "status", "job-999999")
	if code != 2 || !strings.Contains(errb, "HTTP 404") {
		t.Errorf("unknown job exited %d (stderr %q), want 2 with HTTP 404", code, errb)
	}
}

func jsonMust(t *testing.T, s string, v any) {
	t.Helper()
	if err := json.Unmarshal([]byte(s), v); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, s)
	}
}
