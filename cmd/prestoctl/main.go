// Command prestoctl is the thin client for a running prestod daemon:
// submit campaign specs, follow progress, cancel, and fetch artifacts.
//
//	prestoctl submit spec.json            # POST the spec, print the job JSON
//	prestoctl submit -wait spec.json      # ...and stream events until done
//	prestoctl submit -workload mice-heavy # run a workload spec (preset or file) across the system lineup
//	prestoctl list
//	prestoctl status job-000000
//	prestoctl events job-000000           # stream NDJSON events
//	prestoctl stats job-000000            # one frame of live percentiles (p50/p95/p99/p999)
//	prestoctl stats -follow job-000000    # stream frames until the job is terminal
//	prestoctl wait job-000000             # block until terminal; exit 1 unless done
//	prestoctl cancel job-000000
//	prestoctl fetch job-000000 -dir out/  # download report.json/report.csv/manifest.json
//
// spec.json carries the same knobs as cmd/experiments flags:
//
//	{"experiments": "fig7", "seeds": 3, "parallelism": 4,
//	 "duration": "200ms", "warmup": "50ms"}
//
// -workload resolves a workload-spec preset name or presto-workload/1
// file locally, validates it, and inlines its canonical form into the
// request, so the daemon needs no access to the file.
//
// Use "-" to read the spec from stdin. Exit codes: 0 success, 1 the
// job ended failed/cancelled, 2 usage or communication errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"presto/internal/server"
	wspec "presto/internal/workload/spec"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr, os.Stdin))
}

// run is the testable entry point.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, stdin io.Reader) int {
	fs := flag.NewFlagSet("prestoctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:7377", "prestod base URL")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: prestoctl [-addr URL] <submit|list|status|events|stats|wait|cancel|fetch> [args]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	c := &server.Client{BaseURL: *addr}
	cmd, rest := fs.Arg(0), fs.Args()[1:]

	fail := func(err error) int {
		fmt.Fprintf(stderr, "prestoctl %s: %v\n", cmd, err)
		return 2
	}
	printJSON := func(v any) {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	// exitFor maps a terminal job state to the process exit code.
	exitFor := func(st *server.JobStatus) int {
		if st.State == server.StateDone {
			return 0
		}
		fmt.Fprintf(stderr, "prestoctl: job %s %s: %s\n", st.ID, st.State, st.Error)
		return 1
	}
	// streamEvents follows a job's event stream, printing progress
	// lines to stderr, then resolves the final status.
	streamEvents := func(id string) int {
		err := c.Events(ctx, id, 0, func(ev server.Event) error {
			switch ev.Type {
			case "progress":
				fmt.Fprintln(stderr, ev.Line)
			case "state":
				fmt.Fprintf(stderr, "[%s] %s\n", ev.Job, ev.State)
			}
			return nil
		})
		if err != nil {
			return fail(err)
		}
		st, err := c.Wait(ctx, id)
		if err != nil {
			return fail(err)
		}
		printJSON(st)
		return exitFor(st)
	}

	switch cmd {
	case "submit":
		sub := flag.NewFlagSet("submit", flag.ContinueOnError)
		sub.SetOutput(stderr)
		wait := sub.Bool("wait", false, "stream events and block until the job is terminal")
		workload := sub.String("workload", "", "workload-spec preset name or presto-workload/1 file, inlined into the request")
		if err := sub.Parse(rest); err != nil {
			return 2
		}
		if sub.NArg() > 1 || (sub.NArg() == 0 && *workload == "") {
			fmt.Fprintln(stderr, "usage: prestoctl submit [-wait] [-workload PRESET|spec.json] [<spec.json|->]")
			return 2
		}
		var req server.JobRequest
		if sub.NArg() == 1 {
			var specBytes []byte
			var err error
			if sub.Arg(0) == "-" {
				specBytes, err = io.ReadAll(stdin)
			} else {
				specBytes, err = os.ReadFile(sub.Arg(0))
			}
			if err != nil {
				return fail(err)
			}
			if err := json.Unmarshal(specBytes, &req); err != nil {
				return fail(fmt.Errorf("parsing spec: %w", err))
			}
		}
		if *workload != "" {
			// Resolve and validate locally, then ship the canonical spec
			// inline so the daemon never needs the file.
			ws, err := wspec.Resolve(*workload)
			if err != nil {
				return fail(fmt.Errorf("workload: %w", err))
			}
			req.Workload = ws.Canonical()
		}
		st, err := c.Submit(ctx, req)
		if err != nil {
			return fail(err)
		}
		if *wait {
			fmt.Fprintf(stderr, "[%s] submitted\n", st.ID)
			return streamEvents(st.ID)
		}
		printJSON(st)
		return 0

	case "list":
		jobs, err := c.Jobs(ctx)
		if err != nil {
			return fail(err)
		}
		printJSON(jobs)
		return 0

	case "status":
		if len(rest) != 1 {
			fmt.Fprintln(stderr, "usage: prestoctl status <job-id>")
			return 2
		}
		st, err := c.Job(ctx, rest[0])
		if err != nil {
			return fail(err)
		}
		printJSON(st)
		return 0

	case "events":
		if len(rest) != 1 {
			fmt.Fprintln(stderr, "usage: prestoctl events <job-id>")
			return 2
		}
		enc := json.NewEncoder(stdout)
		err := c.Events(ctx, rest[0], 0, func(ev server.Event) error { return enc.Encode(ev) })
		if err != nil {
			return fail(err)
		}
		return 0

	case "stats":
		sub := flag.NewFlagSet("stats", flag.ContinueOnError)
		sub.SetOutput(stderr)
		follow := sub.Bool("follow", false, "stream frames until the job is terminal")
		interval := sub.Duration("interval", 0, "frame cadence when following (default: server's 500ms)")
		if err := sub.Parse(rest); err != nil {
			return 2
		}
		if sub.NArg() != 1 {
			fmt.Fprintln(stderr, "usage: prestoctl stats [-follow] [-interval D] <job-id>")
			return 2
		}
		enc := json.NewEncoder(stdout)
		err := c.Stats(ctx, sub.Arg(0), *follow, *interval, func(f server.StatsFrame) error {
			return enc.Encode(f)
		})
		if err != nil {
			return fail(err)
		}
		return 0

	case "wait":
		if len(rest) != 1 {
			fmt.Fprintln(stderr, "usage: prestoctl wait <job-id>")
			return 2
		}
		return streamEvents(rest[0])

	case "cancel":
		if len(rest) != 1 {
			fmt.Fprintln(stderr, "usage: prestoctl cancel <job-id>")
			return 2
		}
		st, err := c.Cancel(ctx, rest[0])
		if err != nil {
			return fail(err)
		}
		printJSON(st)
		return 0

	case "fetch":
		sub := flag.NewFlagSet("fetch", flag.ContinueOnError)
		sub.SetOutput(stderr)
		dir := sub.String("dir", "", "write artifacts into this directory (default: print report.json to stdout)")
		if err := sub.Parse(rest); err != nil {
			return 2
		}
		if sub.NArg() != 1 {
			fmt.Fprintln(stderr, "usage: prestoctl fetch [-dir DIR] <job-id>")
			return 2
		}
		id := sub.Arg(0)
		if *dir == "" {
			data, err := c.Artifact(ctx, id, "report.json")
			if err != nil {
				return fail(err)
			}
			if _, err := stdout.Write(data); err != nil {
				return fail(err)
			}
			return 0
		}
		names, err := c.Artifacts(ctx, id)
		if err != nil {
			return fail(err)
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			return fail(err)
		}
		for _, name := range names {
			data, err := c.Artifact(ctx, id, name)
			if err != nil {
				return fail(err)
			}
			if err := os.WriteFile(filepath.Join(*dir, name), data, 0o644); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stderr, "wrote %s (%d bytes)\n", filepath.Join(*dir, name), len(data))
		}
		return 0

	default:
		fs.Usage()
		return 2
	}
}
