// Command experiments regenerates every table and figure in the
// paper's evaluation (§5, §6) on the simulator and prints the same
// rows/series the paper reports. Absolute numbers differ from the
// hardware testbed; the comparisons (who wins, by what factor) are
// the reproduction target. See EXPERIMENTS.md for the side-by-side.
//
//	experiments -run all
//	experiments -run fig7            # one experiment
//	experiments -run fig16 -duration 400ms
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"presto"
	"presto/internal/cluster"
	"presto/internal/fabric"
	"presto/internal/gro"
	"presto/internal/metrics"
	"presto/internal/sim"
	"presto/internal/tcp"
	"presto/internal/telemetry"
	"presto/internal/workload"
)

var (
	runFlag  = flag.String("run", "all", "experiment id (fig1, fig5, fig6, ..., table1, table2, ablations) or 'all'")
	seed     = flag.Uint64("seed", 1, "random seed")
	duration = flag.Duration("duration", 200*time.Millisecond, "measurement window per run (simulated)")
	warmup   = flag.Duration("warmup", 50*time.Millisecond, "warmup per run (simulated)")
	csvDir   = flag.String("csv", "", "directory to write raw CDF series as CSV (for replotting the figures)")

	tracePath  = flag.String("trace", "", "write a Chrome trace-event file covering every run (one process per run)")
	eventsPath = flag.String("events", "", "write the raw event log as JSON Lines")
	snapPath   = flag.String("snapshot", "", "write the final telemetry snapshot JSON (probes namespaced run<N>/)")
	verbose    = flag.Bool("v", false, "print the telemetry snapshot summary after all runs")
	cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile")
	memProfile = flag.String("memprofile", "", "write a pprof heap profile")

	// registry is shared by every run of the invocation; nil unless a
	// telemetry flag is set.
	registry *telemetry.Registry
)

// writeCDF dumps a distribution's CDF to <csvDir>/<name>.csv when -csv
// is set.
func writeCDF(name string, d *metrics.Dist) {
	if *csvDir == "" || d == nil || d.N() == 0 {
		return
	}
	if err := os.MkdirAll(*csvDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
		return
	}
	f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
		return
	}
	defer f.Close()
	fmt.Fprintln(f, "value,fraction")
	for _, pt := range d.CDF(512) {
		fmt.Fprintf(f, "%g,%g\n", pt.Value, pt.Fraction)
	}
}

func opt() presto.Options {
	return presto.Options{
		Seed:      *seed,
		Duration:  sim.Time(duration.Nanoseconds()),
		Warmup:    sim.Time(warmup.Nanoseconds()),
		Telemetry: registry,
	}
}

type experiment struct {
	id, title string
	run       func()
}

func main() {
	flag.Parse()
	if *tracePath != "" || *eventsPath != "" || *snapPath != "" || *verbose {
		var tr *telemetry.Tracer
		if *tracePath != "" || *eventsPath != "" {
			tr = telemetry.NewTracer()
		}
		registry = telemetry.NewRegistry(tr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	exps := []experiment{
		{"fig1", "Flowlet sizes vs competing flows (500us gap)", fig1},
		{"fig5", "GRO reordering microbenchmark (OOO counts, segment sizes)", fig5},
		{"fig6", "Receiver CPU overhead at line rate", fig6},
		{"fig7", "Scalability: throughput vs path count", fig7},
		{"fig8", "Scalability: RTT distribution", fig8},
		{"fig9", "Scalability: loss rate and fairness", fig9},
		{"fig10", "Oversubscription: throughput", fig10},
		{"fig11", "Oversubscription: RTT distribution", fig11},
		{"fig12", "Oversubscription: loss rate and fairness", fig12},
		{"fig13", "Flowlet switching vs Presto (stride)", fig13},
		{"fig14", "Presto shadow-MAC vs Presto+ECMP (stride)", fig14},
		{"fig15", "Elephant throughput across workloads", fig15},
		{"fig16", "Mice FCT across workloads", fig16},
		{"table1", "Trace-driven mice FCT (normalized to ECMP)", table1},
		{"table2", "North-south cross traffic: east-west mice FCT", table2},
		{"fig17", "Failure handling: throughput per stage", fig17},
		{"fig18", "Failure handling: RTT per stage (bijection)", fig18},
		{"ablations", "Design-choice ablations (flowcell size, GRO alpha, buffers, DCTCP, tunnels)", ablations},
	}
	want := strings.ToLower(*runFlag)
	ran := 0
	for _, e := range exps {
		if want != "all" && want != e.id {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", e.id, e.title)
		start := time.Now()
		e.run()
		fmt.Printf("---- (%v wall)\n\n", time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *runFlag)
		os.Exit(2)
	}
	exportTelemetry()
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
}

// exportTelemetry writes the shared registry's outputs once every
// requested experiment has run.
func exportTelemetry() {
	if registry == nil {
		return
	}
	tr := registry.Tracer()
	fail := func(what string, err error) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", what, err)
		os.Exit(2)
	}
	if *tracePath != "" {
		if err := telemetry.WriteFile(*tracePath, tr.WriteChromeTrace); err != nil {
			fail("trace", err)
		}
	}
	if *eventsPath != "" {
		if err := telemetry.WriteFile(*eventsPath, tr.WriteJSONL); err != nil {
			fail("events", err)
		}
	}
	snap := registry.Snapshot(0)
	if *snapPath != "" {
		if err := telemetry.WriteFile(*snapPath, snap.WriteJSON); err != nil {
			fail("snapshot", err)
		}
	}
	if *verbose {
		fmt.Print(snap.Summary())
	}
}

func pctRow(d *metrics.Dist) string {
	if d == nil || d.N() == 0 {
		return "n=0"
	}
	return fmt.Sprintf("p50=%.3f p90=%.3f p99=%.3f p99.9=%.3f max=%.3f (n=%d)",
		d.Percentile(50), d.Percentile(90), d.Percentile(99), d.Percentile(99.9), d.Max(), d.N())
}

func fig1() {
	for _, competing := range []int{1, 2, 3, 4, 6, 8} {
		r := presto.RunFlowletSizes(competing, 500*sim.Microsecond, 32<<20, opt())
		fmt.Printf("competing=%d flowlets=%d largest-fraction=%.2f top sizes (MB):", competing, r.Count, r.LargestFraction)
		for _, s := range r.TopSizes {
			fmt.Printf(" %.2f", s)
		}
		fmt.Println()
	}
}

func fig5() {
	off := presto.RunGROMicrobench(true, opt())
	pre := presto.RunGROMicrobench(false, opt())
	fmt.Println("(a) out-of-order segment count exposed to TCP:")
	fmt.Printf("  Official GRO: %s\n", pctRow(off.OOOCounts))
	fmt.Printf("  Presto GRO:   %s\n", pctRow(pre.OOOCounts))
	fmt.Println("(b) pushed segment size (KB):")
	fmt.Printf("  Official GRO: mean=%.1f %s\n", off.SegSizes.Mean(), pctRow(off.SegSizes))
	fmt.Printf("  Presto GRO:   mean=%.1f %s\n", pre.SegSizes.Mean(), pctRow(pre.SegSizes))
	fmt.Printf("throughput: official=%.2f Gbps @ %.0f%% CPU, presto=%.2f Gbps @ %.0f%% CPU\n",
		off.MeanTput, off.CPUUtil*100, pre.MeanTput, pre.CPUUtil*100)
	fmt.Println("(paper: official 4.6 Gbps @ 86%, presto 9.3 Gbps @ 69%)")
}

func fig6() {
	pre := presto.RunCPUOverhead(true, opt())
	off := presto.RunCPUOverhead(false, opt())
	fmt.Printf("Official GRO (no reordering): mean CPU %.1f%% at %.2f Gbps\n", off.Mean, off.MeanTput)
	fmt.Printf("Presto GRO (flowcell spraying): mean CPU %.1f%% at %.2f Gbps\n", pre.Mean, pre.MeanTput)
	fmt.Printf("overhead: +%.1f%% (paper: +6%%)\n", pre.Mean-off.Mean)
}

var scaleSystems = []presto.System{presto.SysECMP, presto.SysMPTCP, presto.SysPresto, presto.SysOptimal}

func fig7() {
	tb := metrics.Table{Header: []string{"paths", "ECMP", "MPTCP", "Presto", "Optimal"}}
	for paths := 2; paths <= 8; paths++ {
		row := []string{fmt.Sprint(paths)}
		for _, sys := range scaleSystems {
			r := presto.RunScalability(sys, paths, opt())
			row = append(row, fmt.Sprintf("%.2f", r.MeanTput))
		}
		tb.AddRow(row...)
	}
	fmt.Print("avg flow throughput (Gbps):\n" + tb.String())
}

func fig8() {
	fmt.Println("RTT (ms) in the 8-path scalability benchmark:")
	for _, sys := range scaleSystems {
		r := presto.RunScalability(sys, 8, opt())
		fmt.Printf("  %-8v %s\n", sys, pctRow(r.RTT))
		fmt.Print(metrics.RenderQuantileBars(r.RTT, []float64{50, 90, 99, 99.9}, 40, "ms"))
		writeCDF("fig8_rtt_"+sys.String(), r.RTT)
	}
}

func fig9() {
	tb := metrics.Table{Header: []string{"paths", "scheme", "loss%", "fairness"}}
	for _, paths := range []int{2, 4, 8} {
		for _, sys := range scaleSystems {
			r := presto.RunScalability(sys, paths, opt())
			tb.AddRow(fmt.Sprint(paths), sys.String(),
				fmt.Sprintf("%.4f", r.LossRate*100), fmt.Sprintf("%.3f", r.Fairness))
		}
	}
	fmt.Print(tb.String())
}

func fig10() {
	tb := metrics.Table{Header: []string{"oversub", "ECMP", "MPTCP", "Presto", "Optimal"}}
	for _, flows := range []int{2, 4, 6, 8} {
		row := []string{fmt.Sprintf("%.1f", float64(flows)/2)}
		for _, sys := range scaleSystems {
			r := presto.RunOversubscription(sys, flows, opt())
			row = append(row, fmt.Sprintf("%.2f", r.MeanTput))
		}
		tb.AddRow(row...)
	}
	fmt.Print("avg flow throughput (Gbps):\n" + tb.String())
}

func fig11() {
	fmt.Println("RTT (ms) at oversubscription 4:1 (8 flows, 2 spines):")
	for _, sys := range []presto.System{presto.SysECMP, presto.SysMPTCP, presto.SysPresto} {
		r := presto.RunOversubscription(sys, 8, opt())
		fmt.Printf("  %-8v %s\n", sys, pctRow(r.RTT))
		writeCDF("fig11_rtt_"+sys.String(), r.RTT)
	}
}

func fig12() {
	tb := metrics.Table{Header: []string{"oversub", "scheme", "loss%", "fairness"}}
	for _, flows := range []int{2, 4, 8} {
		for _, sys := range []presto.System{presto.SysECMP, presto.SysMPTCP, presto.SysPresto} {
			r := presto.RunOversubscription(sys, flows, opt())
			tb.AddRow(fmt.Sprintf("%.1f", float64(flows)/2), sys.String(),
				fmt.Sprintf("%.4f", r.LossRate*100), fmt.Sprintf("%.3f", r.Fairness))
		}
	}
	fmt.Print(tb.String())
}

func fig13() {
	fmt.Println("stride workload, flowlet switching vs Presto:")
	for _, sys := range []presto.System{presto.SysFlowlet100, presto.SysFlowlet500, presto.SysPresto} {
		r := presto.RunWorkload(sys, presto.Stride, opt())
		fmt.Printf("  %-14v tput=%.2f Gbps  RTT %s\n", sys, r.MeanTput, pctRow(r.RTT))
		writeCDF("fig13_rtt_"+sys.String(), r.RTT)
	}
	fmt.Println("(paper: 4.3 / 7.6 / 9.3 Gbps; Presto cuts 99.9p RTT 2-3.6x)")
}

func fig14() {
	for _, sys := range []presto.System{presto.SysPrestoECMP, presto.SysPresto} {
		r := presto.RunWorkload(sys, presto.Stride, opt())
		fmt.Printf("  %-12v tput=%.2f Gbps  RTT %s\n", sys, r.MeanTput, pctRow(r.RTT))
	}
	fmt.Println("(paper: Presto+ECMP 8.9 vs Presto 9.3 Gbps, worse tail RTT)")
}

var workloads = []presto.WorkloadKind{presto.Shuffle, presto.Random, presto.Stride, presto.Bijection}

func fig15() {
	tb := metrics.Table{Header: []string{"workload", "ECMP", "MPTCP", "Presto", "Optimal"}}
	for _, w := range workloads {
		row := []string{w.String()}
		for _, sys := range scaleSystems {
			r := presto.RunWorkload(sys, w, opt())
			row = append(row, fmt.Sprintf("%.2f", r.MeanTput))
		}
		tb.AddRow(row...)
	}
	fmt.Print("elephant throughput (Gbps):\n" + tb.String())
}

func fig16() {
	for _, w := range []presto.WorkloadKind{presto.Stride, presto.Bijection, presto.Shuffle} {
		fmt.Printf("mice FCT (ms), %v workload:\n", w)
		for _, sys := range scaleSystems {
			r := presto.RunWorkload(sys, w, opt())
			fmt.Printf("  %-8v %s timeouts=%d\n", sys, pctRow(r.FCT), r.MiceTimeouts)
			writeCDF(fmt.Sprintf("fig16_fct_%v_%v", w, sys), r.FCT)
		}
	}
}

func table1() {
	systems := []presto.System{presto.SysECMP, presto.SysOptimal, presto.SysPresto}
	results := map[presto.System]presto.TraceResult{}
	for _, sys := range systems {
		results[sys] = presto.RunTrace(sys, opt())
	}
	base := results[presto.SysECMP].MiceFCT
	tb := metrics.Table{Header: []string{"percentile", "ECMP", "Optimal", "Presto"}}
	for _, p := range []float64{50, 90, 99, 99.9} {
		row := []string{fmt.Sprintf("%g%%", p)}
		for _, sys := range systems {
			v := results[sys].MiceFCT.Percentile(p)
			if sys == presto.SysECMP {
				row = append(row, "1.0")
			} else if b := base.Percentile(p); b > 0 {
				row = append(row, fmt.Sprintf("%+.0f%%", (v/b-1)*100))
			} else {
				row = append(row, "n/a")
			}
		}
		tb.AddRow(row...)
	}
	fmt.Print("mice (<100KB) FCT normalized to ECMP (paper: Presto -9/-32/-56/-60%):\n" + tb.String())
	fmt.Printf("elephant tput (Gbps): ECMP=%.2f Optimal=%.2f Presto=%.2f\n",
		results[presto.SysECMP].ElephantTput, results[presto.SysOptimal].ElephantTput, results[presto.SysPresto].ElephantTput)
}

func table2() {
	systems := []presto.System{presto.SysECMP, presto.SysMPTCP, presto.SysPresto, presto.SysOptimal}
	results := map[presto.System]presto.NorthSouthResult{}
	for _, sys := range systems {
		results[sys] = presto.RunNorthSouth(sys, opt())
	}
	base := results[presto.SysECMP].MiceFCT
	tb := metrics.Table{Header: []string{"percentile", "ECMP", "MPTCP", "Presto", "Optimal"}}
	for _, p := range []float64{50, 90, 99, 99.9} {
		row := []string{fmt.Sprintf("%g%%", p)}
		for _, sys := range systems {
			r := results[sys]
			if sys == presto.SysECMP {
				row = append(row, "1.0")
				continue
			}
			if r.MiceFCT.N() == 0 {
				row = append(row, "n/a")
				continue
			}
			v := r.MiceFCT.Percentile(p)
			if b := base.Percentile(p); b > 0 {
				row = append(row, fmt.Sprintf("%+.0f%%", (v/b-1)*100))
			} else {
				row = append(row, "n/a")
			}
		}
		tb.AddRow(row...)
	}
	fmt.Print("east-west mice FCT normalized to ECMP (paper: Presto -20/-79/-86/-87%):\n" + tb.String())
	fmt.Printf("east-west tput (Gbps): ")
	for _, sys := range systems {
		fmt.Printf("%v=%.2f ", sys, results[sys].MeanTput)
	}
	fmt.Println("\n(paper: 5.7 / 7.4 / 8.2 / 8.9 Gbps)")
}

func fig17() {
	tb := metrics.Table{Header: []string{"workload", "symmetry", "failover", "weighted"}}
	for _, w := range []presto.FailoverWorkload{presto.FailL1L4, presto.FailL4L1, presto.FailStride, presto.FailBijection} {
		r := presto.RunFailover(w, opt())
		tb.AddRow(w.String(),
			fmt.Sprintf("%.2f", r.SymmetryTput),
			fmt.Sprintf("%.2f", r.FailoverTput),
			fmt.Sprintf("%.2f", r.WeightedTput))
	}
	fmt.Print("Presto throughput per failure stage (Gbps):\n" + tb.String())
}

func fig18() {
	r := presto.RunFailover(presto.FailBijection, opt())
	fmt.Println("Presto RTT (ms) per failure stage, random bijection:")
	fmt.Printf("  symmetry: %s\n", pctRow(r.SymmetryRTT))
	fmt.Printf("  failover: %s\n", pctRow(r.FailoverRTT))
	fmt.Printf("  weighted: %s\n", pctRow(r.WeightedRTT))
	writeCDF("fig18_rtt_symmetry", r.SymmetryRTT)
	writeCDF("fig18_rtt_failover", r.FailoverRTT)
	writeCDF("fig18_rtt_weighted", r.WeightedRTT)
}

// ablations prints the design-choice sweeps DESIGN.md calls out,
// using the same miniature harness as bench_ablation_test.go.
func ablations() {
	runStride := func(mut func(*cluster.Config)) (gbps float64, c *cluster.Cluster) {
		cfg := cluster.Config{Topology: presto.Testbed(), Scheme: cluster.Presto, Seed: *seed, Telemetry: registry}
		if mut != nil {
			mut(&cfg)
		}
		c = cluster.New(cfg)
		el := workload.Stride(c, 8)
		c.Eng.Run(20 * sim.Millisecond)
		el.ResetBaseline(c.Eng.Now())
		c.Eng.Run(90 * sim.Millisecond)
		return el.Mean(c.Eng.Now()), c
	}

	fmt.Println("flowcell size (stride, Gbps/flow):")
	for _, kb := range []int{16, 32, 64, 128, 256} {
		g, _ := runStride(func(cfg *cluster.Config) { cfg.FlowcellBytes = kb << 10 })
		fmt.Printf("  %3d KB: %.2f\n", kb, g)
	}

	fmt.Println("GRO hold multiplier alpha (stride, Gbps/flow, false-loss fires):")
	for _, a := range []float64{0.5, 1, 2, 4} {
		g, c := runStride(func(cfg *cluster.Config) { cfg.GROConfig = gro.PrestoConfig{Alpha: a} })
		var fires uint64
		for _, h := range c.Hosts {
			fires += h.NIC.GRO().Stats().TimeoutFires
		}
		fmt.Printf("  alpha=%-4g %.2f Gbps  %d timeouts\n", a, g, fires)
	}

	fmt.Println("switch buffer depth (stride, Gbps/flow, loss%):")
	for _, kb := range []int{256, 512, 2048, 8192} {
		g, c := runStride(func(cfg *cluster.Config) { cfg.Fabric = fabric.Config{SwitchQueueBytes: kb << 10} })
		fmt.Printf("  %4d KB: %.2f Gbps  %.4f%% loss\n", kb, g, c.Net.LossRate()*100)
	}

	fmt.Println("congestion control (stride, Gbps/flow):")
	for _, cc := range []string{"cubic", "reno", "dctcp"} {
		g, _ := runStride(func(cfg *cluster.Config) {
			cfg.TCP = tcp.Config{CC: cc}
			if cc == "dctcp" {
				cfg.Fabric = fabric.Config{ECNThresholdBytes: 200 << 10}
			}
		})
		fmt.Printf("  %-6s %.2f\n", cc, g)
	}

	fmt.Println("label mode (stride, Gbps/flow, leaf rules):")
	for _, tunnel := range []bool{false, true} {
		g, c := runStride(func(cfg *cluster.Config) { cfg.Ctrl.TunnelMode = tunnel })
		rules := 0
		for _, leaf := range c.Topo.Leaves {
			rules += c.Net.Switch(leaf).LabelCount()
		}
		name := "per-host"
		if tunnel {
			name = "tunnel"
		}
		fmt.Printf("  %-8s %.2f Gbps  %d rules\n", name, g, rules)
	}
}
