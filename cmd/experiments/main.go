// Command experiments regenerates every table and figure in the
// paper's evaluation (§5, §6) through the campaign runner: the
// selected experiments expand into a grid of cells × seeds executed on
// a bounded worker pool. Absolute numbers differ from the hardware
// testbed; the comparisons (who wins, by what factor) are the
// reproduction target. See EXPERIMENTS.md for the side-by-side and
// the "Running campaigns" section for the artifact formats.
//
//	experiments -run all                      # every figure/table, GOMAXPROCS workers
//	experiments -run fig7                     # one experiment
//	experiments -run fig16 -duration 400ms
//	experiments -run all -seeds 5 -parallel 8 # 5-seed envelopes, 8 workers
//	experiments -run fig5 -gate testdata/golden/mini.json -update
//	experiments -workload mice-heavy          # declarative workload spec (preset name)
//	experiments -workload examples/specs/incast32.json
//	experiments -workload-check elephants,examples/specs/trace.json
//
// All progress and diagnostics stream to stderr; stdout carries only
// the result document (-format table, json, or csv), so it can be
// piped straight into a parser.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"presto"
	"presto/internal/campaign"
	"presto/internal/metrics"
	"presto/internal/sim"
	"presto/internal/telemetry"
	wspec "presto/internal/workload/spec"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: exit code 0 on success, 1 on
// failed cells or gate drift, 2 on usage/spec/IO errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runFlag  = fs.String("run", "all", "experiment selection: 'all' or comma-separated IDs (fig1, fig5, ..., table1, table2, ablations)")
		seed     = fs.Uint64("seed", 1, "base random seed; replicas use seed, seed+1, ...")
		seeds    = fs.Int("seeds", 1, "seed replicas per cell (envelopes report mean ±stddev across them)")
		parallel = fs.Int("parallel", 0, "worker pool size; 0 = GOMAXPROCS, 1 = serial")
		timeout  = fs.Duration("timeout", 5*time.Minute, "wall-clock budget per cell replica (0 = none)")
		duration = fs.Duration("duration", 200*time.Millisecond, "measurement window per run (simulated)")
		warmup   = fs.Duration("warmup", 50*time.Millisecond, "warmup per run (simulated)")
		shards   = fs.Int("shards", 1, "per-pod engine shards for pod-scale experiments (podtraffic); results are bit-identical to serial, 1 = serial")
		format   = fs.String("format", "table", "stdout format: table (paper-style), json (campaign report), csv (envelope rows)")
		outDir   = fs.String("out", "", "directory for campaign artifacts (report.json, report.csv, manifest.json)")
		csvDir   = fs.String("csv", "", "directory to write raw CDF series as CSV (for replotting the figures)")
		gatePath = fs.String("gate", "", "golden envelope file to compare against (regression gate)")
		update   = fs.Bool("update", false, "with -gate: regenerate the golden file from this run instead of checking")
		list     = fs.Bool("list", false, "list experiment IDs and exit")
		workload = fs.String("workload", "", "run a declarative workload spec (preset name or spec.json path) across the §4 system lineup instead of -run")
		schemeF  = fs.String("scheme", "", "comma-separated scheme specs (registry name, optionally name:k=v,...); restricts -run scheme-matrix or replaces the -workload system lineup")
		wlCheck  = fs.String("workload-check", "", "validate workload specs (comma-separated preset names or spec.json paths) and exit")

		tracePath  = fs.String("trace", "", "write a Chrome trace-event file covering every run (one process per run)")
		eventsPath = fs.String("events", "", "write the raw event log as JSON Lines")
		snapPath   = fs.String("snapshot", "", "write the final telemetry snapshot JSON")
		verbose    = fs.Bool("v", false, "print the telemetry snapshot summary to stderr after all runs")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, id := range presto.CampaignExperimentIDs() {
			fmt.Fprintf(stdout, "%-10s %s\n", id, presto.CampaignExperimentTitle(id))
		}
		return 0
	}
	fail := func(what string, err error) int {
		fmt.Fprintf(stderr, "%s: %v\n", what, err)
		return 2
	}
	if *wlCheck != "" {
		// Validation mode (CI): load each spec through the full loader
		// and report per-spec status; exit 2 on the first failure.
		for _, name := range strings.Split(*wlCheck, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			ws, err := wspec.Resolve(name)
			if err != nil {
				return fail("workload-check "+name, err)
			}
			fmt.Fprintf(stdout, "%s: ok (name=%s hash=%s clients=%d)\n", name, ws.Name, ws.Hash(), len(ws.Clients))
		}
		return 0
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail("cpuprofile", err)
		}
		defer f.Close() //prestolint:allow errdrop -- profile file is auxiliary diagnostics; StopCPUProfile already flushed before this close runs
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail("cpuprofile", err)
		}
		defer pprof.StopCPUProfile()
	}

	var registry *telemetry.Registry
	if *tracePath != "" || *eventsPath != "" || *snapPath != "" || *verbose {
		var tr *telemetry.Tracer
		if *tracePath != "" || *eventsPath != "" {
			tr = telemetry.NewTracer()
		}
		registry = telemetry.NewRegistry(tr)
	}

	opt := presto.Options{
		Duration: sim.FromDuration(*duration),
		Warmup:   sim.FromDuration(*warmup),
		Shards:   *shards,
	}
	// Per-run component probes and event traces share one registry and
	// are only deterministic when the runs execute serially; at higher
	// parallelism the registry still collects campaign-level probes.
	if registry != nil {
		if *parallel == 1 {
			opt.Telemetry = registry
		} else {
			fmt.Fprintln(stderr, "note: per-run telemetry probes need -parallel 1; collecting campaign-level telemetry only")
		}
	}

	var schemes []string
	if *schemeF != "" {
		for _, s := range strings.Split(*schemeF, ",") {
			if s = strings.TrimSpace(s); s != "" {
				schemes = append(schemes, s)
			}
		}
	}

	var spec *campaign.Spec
	switch {
	case *workload != "":
		ws, err := wspec.Resolve(*workload)
		if err != nil {
			return fail("workload", err)
		}
		var systems []presto.System
		for _, s := range schemes {
			sys, err := presto.SystemFor(s)
			if err != nil {
				return fail("scheme", err)
			}
			systems = append(systems, sys)
		}
		spec = presto.SpecWorkloadCampaign(ws, systems, opt)
	case len(schemes) > 0:
		if *runFlag != "scheme-matrix" {
			return fail("scheme", fmt.Errorf("-scheme needs -workload or -run scheme-matrix (registered schemes: %s)", strings.Join(presto.SchemeNames(), ", ")))
		}
		var err error
		spec, err = presto.SchemeMatrixSpec(schemes, opt)
		if err != nil {
			return fail("scheme", err)
		}
	default:
		var err error
		spec, err = presto.CampaignSpec(*runFlag, opt)
		if err != nil {
			return fail("spec", err)
		}
	}
	spec.Seeds = campaign.Seeds(*seed, *seeds)
	spec.Parallelism = *parallel
	spec.CellTimeout = *timeout
	spec.Progress = stderr
	spec.Telemetry = registry

	report, err := presto.RunCampaign(spec)
	if err != nil {
		return fail("campaign", err)
	}

	switch *format {
	case "table":
		renderReport(stdout, report, *seeds)
	case "json":
		if err := report.WriteJSON(stdout); err != nil {
			return fail("json", err)
		}
	case "csv":
		if err := report.WriteCSV(stdout); err != nil {
			return fail("csv", err)
		}
	default:
		return fail("format", fmt.Errorf("unknown -format %q (table, json, csv)", *format))
	}

	if *csvDir != "" {
		if err := writeCDFs(*csvDir, report); err != nil {
			return fail("csv dir", err)
		}
	}
	if *outDir != "" {
		if err := report.WriteArtifacts(*outDir, gitDescribe()); err != nil {
			return fail("artifacts", err)
		}
		fmt.Fprintf(stderr, "artifacts written to %s (report.json, report.csv, manifest.json)\n", *outDir)
	}
	if err := exportTelemetry(registry, *tracePath, *eventsPath, *snapPath, *verbose, stderr); err != nil {
		return fail("telemetry", err)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fail("memprofile", err)
		}
		defer f.Close() //prestolint:allow errdrop -- profile file is auxiliary diagnostics; WriteHeapProfile's error is already checked
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fail("memprofile", err)
		}
	}

	code := 0
	if failed := report.FailedReplicas(); len(failed) > 0 {
		fmt.Fprintf(stderr, "%d replica(s) failed:\n", len(failed))
		for _, f := range failed {
			fmt.Fprintf(stderr, "  %s seed=%d: %s\n", f.Cell, f.Seed, f.Err)
		}
		code = 1
	}

	switch {
	case *gatePath != "" && *update:
		golden := campaign.GoldenFromReport(report, 0.02)
		if err := golden.Save(*gatePath); err != nil {
			return fail("gate update", err)
		}
		fmt.Fprintf(stderr, "golden envelopes written to %s (spec %s)\n", *gatePath, report.SpecHash)
	case *gatePath != "":
		golden, err := campaign.LoadGolden(*gatePath)
		if err != nil {
			return fail("gate", err)
		}
		drifts, err := golden.Check(report)
		if err != nil {
			return fail("gate", err)
		}
		if len(drifts) > 0 {
			fmt.Fprintf(stderr, "regression gate FAILED: %d metric(s) drifted beyond tolerance:\n", len(drifts))
			for _, d := range drifts {
				fmt.Fprintf(stderr, "  %s\n", d)
			}
			fmt.Fprintf(stderr, "(intentional change? regenerate with -gate %s -update)\n", *gatePath)
			code = 1
		} else {
			fmt.Fprintf(stderr, "regression gate passed: %d cells within tolerance of %s\n", len(report.Cells), *gatePath)
		}
	}
	return code
}

// gitDescribe stamps the manifest with the repository state; empty
// outside a git checkout.
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// writeCDFs dumps every cell's merged sample distributions as
// <dir>/<cell>_<dist>.csv ("/" and "=" sanitized for filenames).
func writeCDFs(dir string, r *campaign.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sanitize := strings.NewReplacer("/", "_", "=", "-", "+", "")
	for i := range r.Cells {
		c := &r.Cells[i]
		for _, name := range c.DistNames() {
			d := c.Dist(name)
			if d == nil || d.N() == 0 {
				continue
			}
			f, err := os.Create(filepath.Join(dir, sanitize.Replace(c.ID)+"_"+name+".csv"))
			if err != nil {
				return err
			}
			fmt.Fprintln(f, "value,fraction")
			for _, pt := range d.CDF(512) {
				fmt.Fprintf(f, "%g,%g\n", pt.Value, pt.Fraction)
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// exportTelemetry writes the registry's outputs once the campaign has
// finished; the -v summary goes to stderr with the other diagnostics.
func exportTelemetry(registry *telemetry.Registry, tracePath, eventsPath, snapPath string, verbose bool, stderr io.Writer) error {
	if registry == nil {
		return nil
	}
	tr := registry.Tracer()
	if tracePath != "" {
		if err := telemetry.WriteFile(tracePath, tr.WriteChromeTrace); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	if eventsPath != "" {
		if err := telemetry.WriteFile(eventsPath, tr.WriteJSONL); err != nil {
			return fmt.Errorf("events: %w", err)
		}
	}
	snap := registry.Snapshot(0)
	if snapPath != "" {
		if err := telemetry.WriteFile(snapPath, snap.WriteJSON); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
	}
	if verbose {
		fmt.Fprint(stderr, snap.Summary())
	}
	return nil
}

// metricsTable renders the generic fallback for an experiment: one row
// per cell × metric envelope.
func metricsTable(w io.Writer, cells []*campaign.CellResult) {
	tb := metrics.Table{Header: []string{"cell", "metric", "value"}}
	for _, c := range cells {
		names := make([]string, 0, len(c.Envelopes))
		for k := range c.Envelopes {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			tb.AddRow(strings.TrimPrefix(c.ID, c.Experiment+"/"), k, c.Envelopes[k].String())
		}
	}
	fmt.Fprint(w, tb.String())
}
