package main

// Paper-style rendering of a campaign report: each experiment keeps
// the table/figure layout of the paper's evaluation, but every number
// now comes from the report's seed-aggregated envelopes, so the same
// bytes appear at any -parallel level. With -seeds > 1 values render
// as "mean ±stddev".

import (
	"fmt"
	"io"
	"strings"

	"presto"
	"presto/internal/campaign"
	"presto/internal/metrics"
)

// rx wraps a report with the lookup helpers the renderers share.
type rx struct {
	r *campaign.Report
}

// env returns the envelope for (cell, metric); zero when absent (a
// failed cell renders as 0 rather than aborting the document).
func (x rx) env(id, metric string) campaign.Envelope {
	e, _ := x.r.Envelope(id, metric)
	return e
}

// val renders an envelope mean with prec decimals, appending ±stddev
// for seed-replicated runs.
func (x rx) val(id, metric string, prec int) string {
	e := x.env(id, metric)
	s := fmt.Sprintf("%.*f", prec, e.Mean)
	if e.N > 1 {
		s += fmt.Sprintf("±%.*f", prec, e.Stddev)
	}
	return s
}

// pctRow renders the familiar percentile row from prefixed metrics
// (prefix_p50 ... prefix_max, prefix_n).
func (x rx) pctRow(id, prefix string) string {
	n := x.env(id, prefix+"_n")
	if n.Mean == 0 {
		return "n=0"
	}
	return fmt.Sprintf("p50=%.3f p90=%.3f p99=%.3f p99.9=%.3f max=%.3f (n=%.0f)",
		x.env(id, prefix+"_p50").Mean, x.env(id, prefix+"_p90").Mean,
		x.env(id, prefix+"_p99").Mean, x.env(id, prefix+"_p999").Mean,
		x.env(id, prefix+"_max").Mean, n.Mean)
}

// dist returns a cell's merged sample distribution (nil-safe).
func (x rx) dist(id, name string) *metrics.Dist {
	if c := x.r.Cell(id); c != nil {
		return c.Dist(name)
	}
	return nil
}

// renderReport writes the paper-style result document for every
// experiment present in the report, in campaign order.
func renderReport(w io.Writer, report *campaign.Report, seeds int) {
	x := rx{r: report}
	renderers := map[string]func(io.Writer, rx){
		"fig1": renderFig1, "fig5": renderFig5, "fig6": renderFig6,
		"fig7": renderFig7, "fig8": renderFig8, "fig9": renderFig9,
		"fig10": renderFig10, "fig11": renderFig11, "fig12": renderFig12,
		"fig13": renderFig13, "fig14": renderFig14, "fig15": renderFig15,
		"fig16": renderFig16, "table1": renderTable1, "table2": renderTable2,
		"fig17": renderFig17, "fig18": renderFig18, "ablations": renderAblations,
		"scheme-matrix": renderSchemeMatrix,
	}
	for _, exp := range presto.ExperimentsInReport(report) {
		fmt.Fprintf(w, "==== %s: %s ====\n", exp, presto.CampaignExperimentTitle(exp))
		if seeds > 1 {
			fmt.Fprintf(w, "(%d-seed envelopes: mean ±stddev)\n", seeds)
		}
		if render, ok := renderers[exp]; ok {
			render(w, x)
		} else {
			renderGeneric(w, x, exp)
		}
		fmt.Fprintln(w)
	}
}

// renderGeneric is the fallback for experiments without a bespoke
// layout.
func renderGeneric(w io.Writer, x rx, exp string) {
	var cells []*campaign.CellResult
	for i := range x.r.Cells {
		if x.r.Cells[i].Experiment == exp {
			cells = append(cells, &x.r.Cells[i])
		}
	}
	metricsTable(w, cells)
}

func renderFig1(w io.Writer, x rx) {
	for _, competing := range []int{1, 2, 3, 4, 6, 8} {
		id := fmt.Sprintf("fig1/competing=%d", competing)
		fmt.Fprintf(w, "competing=%d flowlets=%s largest-fraction=%s top sizes (MB): %s %s %s\n",
			competing, x.val(id, "flowlets", 0), x.val(id, "largest_fraction", 2),
			x.val(id, "top1_mb", 2), x.val(id, "top2_mb", 2), x.val(id, "top3_mb", 2))
	}
}

func renderFig5(w io.Writer, x rx) {
	off, pre := "fig5/gro=official", "fig5/gro=presto"
	fmt.Fprintln(w, "(a) out-of-order segment count exposed to TCP:")
	fmt.Fprintf(w, "  Official GRO: %s\n", x.pctRow(off, "ooo"))
	fmt.Fprintf(w, "  Presto GRO:   %s\n", x.pctRow(pre, "ooo"))
	fmt.Fprintln(w, "(b) pushed segment size (KB):")
	fmt.Fprintf(w, "  Official GRO: mean=%s %s\n", x.val(off, "seg_kb_mean", 1), x.pctRow(off, "seg_kb"))
	fmt.Fprintf(w, "  Presto GRO:   mean=%s %s\n", x.val(pre, "seg_kb_mean", 1), x.pctRow(pre, "seg_kb"))
	fmt.Fprintf(w, "throughput: official=%s Gbps @ %s%% CPU, presto=%s Gbps @ %s%% CPU\n",
		x.val(off, "tput_gbps", 2), x.val(off, "cpu_util_pct", 0),
		x.val(pre, "tput_gbps", 2), x.val(pre, "cpu_util_pct", 0))
	fmt.Fprintln(w, "(paper: official 4.6 Gbps @ 86%, presto 9.3 Gbps @ 69%)")
}

func renderFig6(w io.Writer, x rx) {
	fmt.Fprintf(w, "Official GRO (no reordering): mean CPU %s%% at %s Gbps\n",
		x.val("fig6/gro=official", "cpu_pct", 1), x.val("fig6/gro=official", "tput_gbps", 2))
	fmt.Fprintf(w, "Presto GRO (flowcell spraying): mean CPU %s%% at %s Gbps\n",
		x.val("fig6/gro=presto", "cpu_pct", 1), x.val("fig6/gro=presto", "tput_gbps", 2))
	delta := x.env("fig6/gro=presto", "cpu_pct").Mean - x.env("fig6/gro=official", "cpu_pct").Mean
	fmt.Fprintf(w, "overhead: +%.1f%% (paper: +6%%)\n", delta)
}

var scaleSystems = []presto.System{presto.SysECMP, presto.SysMPTCP, presto.SysPresto, presto.SysOptimal}

func renderFig7(w io.Writer, x rx) {
	tb := metrics.Table{Header: []string{"paths", "ECMP", "MPTCP", "Presto", "Optimal"}}
	for paths := 2; paths <= 8; paths++ {
		row := []string{fmt.Sprint(paths)}
		for _, sys := range scaleSystems {
			row = append(row, x.val(fmt.Sprintf("fig7/paths=%d/sys=%v", paths, sys), "tput_gbps", 2))
		}
		tb.AddRow(row...)
	}
	fmt.Fprint(w, "avg flow throughput (Gbps):\n"+tb.String())
}

func renderFig8(w io.Writer, x rx) {
	fmt.Fprintln(w, "RTT (ms) in the 8-path scalability benchmark:")
	for _, sys := range scaleSystems {
		id := fmt.Sprintf("fig8/sys=%v", sys)
		fmt.Fprintf(w, "  %-8v %s\n", sys, x.pctRow(id, "rtt_ms"))
		fmt.Fprint(w, metrics.RenderQuantileBars(x.dist(id, "rtt_ms"), []float64{50, 90, 99, 99.9}, 40, "ms"))
	}
}

func renderFig9(w io.Writer, x rx) {
	tb := metrics.Table{Header: []string{"paths", "scheme", "loss%", "fairness"}}
	for _, paths := range []int{2, 4, 8} {
		for _, sys := range scaleSystems {
			id := fmt.Sprintf("fig9/paths=%d/sys=%v", paths, sys)
			tb.AddRow(fmt.Sprint(paths), sys.String(), x.val(id, "loss_pct", 4), x.val(id, "fairness", 3))
		}
	}
	fmt.Fprint(w, tb.String())
}

func renderFig10(w io.Writer, x rx) {
	tb := metrics.Table{Header: []string{"oversub", "ECMP", "MPTCP", "Presto", "Optimal"}}
	for _, flows := range []int{2, 4, 6, 8} {
		row := []string{fmt.Sprintf("%.1f", float64(flows)/2)}
		for _, sys := range scaleSystems {
			row = append(row, x.val(fmt.Sprintf("fig10/flows=%d/sys=%v", flows, sys), "tput_gbps", 2))
		}
		tb.AddRow(row...)
	}
	fmt.Fprint(w, "avg flow throughput (Gbps):\n"+tb.String())
}

func renderFig11(w io.Writer, x rx) {
	fmt.Fprintln(w, "RTT (ms) at oversubscription 4:1 (8 flows, 2 spines):")
	for _, sys := range []presto.System{presto.SysECMP, presto.SysMPTCP, presto.SysPresto} {
		fmt.Fprintf(w, "  %-8v %s\n", sys, x.pctRow(fmt.Sprintf("fig11/sys=%v", sys), "rtt_ms"))
	}
}

func renderFig12(w io.Writer, x rx) {
	tb := metrics.Table{Header: []string{"oversub", "scheme", "loss%", "fairness"}}
	for _, flows := range []int{2, 4, 8} {
		for _, sys := range []presto.System{presto.SysECMP, presto.SysMPTCP, presto.SysPresto} {
			id := fmt.Sprintf("fig12/flows=%d/sys=%v", flows, sys)
			tb.AddRow(fmt.Sprintf("%.1f", float64(flows)/2), sys.String(), x.val(id, "loss_pct", 4), x.val(id, "fairness", 3))
		}
	}
	fmt.Fprint(w, tb.String())
}

func renderFig13(w io.Writer, x rx) {
	fmt.Fprintln(w, "stride workload, flowlet switching vs Presto:")
	for _, sys := range []presto.System{presto.SysFlowlet100, presto.SysFlowlet500, presto.SysPresto} {
		id := fmt.Sprintf("fig13/sys=%v", sys)
		fmt.Fprintf(w, "  %-14v tput=%s Gbps  RTT %s\n", sys, x.val(id, "tput_gbps", 2), x.pctRow(id, "rtt_ms"))
	}
	fmt.Fprintln(w, "(paper: 4.3 / 7.6 / 9.3 Gbps; Presto cuts 99.9p RTT 2-3.6x)")
}

func renderFig14(w io.Writer, x rx) {
	for _, sys := range []presto.System{presto.SysPrestoECMP, presto.SysPresto} {
		id := fmt.Sprintf("fig14/sys=%v", sys)
		fmt.Fprintf(w, "  %-12v tput=%s Gbps  RTT %s\n", sys, x.val(id, "tput_gbps", 2), x.pctRow(id, "rtt_ms"))
	}
	fmt.Fprintln(w, "(paper: Presto+ECMP 8.9 vs Presto 9.3 Gbps, worse tail RTT)")
}

var renderWorkloads = []presto.WorkloadKind{presto.Shuffle, presto.Random, presto.Stride, presto.Bijection}

func renderFig15(w io.Writer, x rx) {
	tb := metrics.Table{Header: []string{"workload", "ECMP", "MPTCP", "Presto", "Optimal"}}
	for _, wl := range renderWorkloads {
		row := []string{wl.String()}
		for _, sys := range scaleSystems {
			row = append(row, x.val(fmt.Sprintf("fig15/wl=%v/sys=%v", wl, sys), "tput_gbps", 2))
		}
		tb.AddRow(row...)
	}
	fmt.Fprint(w, "elephant throughput (Gbps):\n"+tb.String())
}

func renderFig16(w io.Writer, x rx) {
	for _, wl := range []presto.WorkloadKind{presto.Stride, presto.Bijection, presto.Shuffle} {
		fmt.Fprintf(w, "mice FCT (ms), %v workload:\n", wl)
		for _, sys := range scaleSystems {
			id := fmt.Sprintf("fig16/wl=%v/sys=%v", wl, sys)
			fmt.Fprintf(w, "  %-8v %s timeouts=%s\n", sys, x.pctRow(id, "fct_ms"), x.val(id, "mice_timeouts", 0))
		}
	}
}

// normalizedRow renders a percentile row normalized to the ECMP cell's
// envelope means, the paper's Table 1/2 presentation.
func normalizedRow(x rx, ids []string, baseID, prefix string, p string) []string {
	base := x.env(baseID, prefix+"_"+p).Mean
	row := make([]string, 0, len(ids))
	for _, id := range ids {
		if id == baseID {
			row = append(row, "1.0")
			continue
		}
		if x.env(id, prefix+"_n").Mean == 0 {
			row = append(row, "n/a")
			continue
		}
		v := x.env(id, prefix+"_"+p).Mean
		if base > 0 {
			row = append(row, fmt.Sprintf("%+.0f%%", (v/base-1)*100))
		} else {
			row = append(row, "n/a")
		}
	}
	return row
}

var pctKeys = []struct{ label, key string }{
	{"50%", "p50"}, {"90%", "p90"}, {"99%", "p99"}, {"99.9%", "p999"},
}

func renderTable1(w io.Writer, x rx) {
	ids := []string{"table1/sys=ECMP", "table1/sys=Optimal", "table1/sys=Presto"}
	tb := metrics.Table{Header: []string{"percentile", "ECMP", "Optimal", "Presto"}}
	for _, p := range pctKeys {
		tb.AddRow(append([]string{p.label}, normalizedRow(x, ids, ids[0], "fct_ms", p.key)...)...)
	}
	fmt.Fprint(w, "mice (<100KB) FCT normalized to ECMP (paper: Presto -9/-32/-56/-60%):\n"+tb.String())
	fmt.Fprintf(w, "elephant tput (Gbps): ECMP=%s Optimal=%s Presto=%s\n",
		x.val(ids[0], "elephant_tput_gbps", 2), x.val(ids[1], "elephant_tput_gbps", 2), x.val(ids[2], "elephant_tput_gbps", 2))
}

func renderTable2(w io.Writer, x rx) {
	systems := []presto.System{presto.SysECMP, presto.SysMPTCP, presto.SysPresto, presto.SysOptimal}
	ids := make([]string, len(systems))
	for i, sys := range systems {
		ids[i] = fmt.Sprintf("table2/sys=%v", sys)
	}
	tb := metrics.Table{Header: []string{"percentile", "ECMP", "MPTCP", "Presto", "Optimal"}}
	for _, p := range pctKeys {
		tb.AddRow(append([]string{p.label}, normalizedRow(x, ids, ids[0], "fct_ms", p.key)...)...)
	}
	fmt.Fprint(w, "east-west mice FCT normalized to ECMP (paper: Presto -20/-79/-86/-87%):\n"+tb.String())
	fmt.Fprintf(w, "east-west tput (Gbps): ")
	for i, sys := range systems {
		fmt.Fprintf(w, "%v=%s ", sys, x.val(ids[i], "tput_gbps", 2))
	}
	fmt.Fprintln(w, "\n(paper: 5.7 / 7.4 / 8.2 / 8.9 Gbps)")
}

func renderFig17(w io.Writer, x rx) {
	tb := metrics.Table{Header: []string{"workload", "symmetry", "failover", "weighted"}}
	for _, wl := range []presto.FailoverWorkload{presto.FailL1L4, presto.FailL4L1, presto.FailStride, presto.FailBijection} {
		id := fmt.Sprintf("fig17/wl=%v", wl)
		tb.AddRow(wl.String(), x.val(id, "symmetry_gbps", 2), x.val(id, "failover_gbps", 2), x.val(id, "weighted_gbps", 2))
	}
	fmt.Fprint(w, "Presto throughput per failure stage (Gbps):\n"+tb.String())
}

func renderFig18(w io.Writer, x rx) {
	id := "fig18/wl=bijection"
	fmt.Fprintln(w, "Presto RTT (ms) per failure stage, random bijection:")
	fmt.Fprintf(w, "  symmetry: %s\n", x.pctRow(id, "symmetry_rtt_ms"))
	fmt.Fprintf(w, "  failover: %s\n", x.pctRow(id, "failover_rtt_ms"))
	fmt.Fprintf(w, "  weighted: %s\n", x.pctRow(id, "weighted_rtt_ms"))
}

func renderAblations(w io.Writer, x rx) {
	fmt.Fprintln(w, "flowcell size (stride, Gbps/flow):")
	for _, kb := range []int{16, 32, 64, 128, 256} {
		fmt.Fprintf(w, "  %3d KB: %s\n", kb, x.val(fmt.Sprintf("ablations/flowcell_kb=%d", kb), "tput_gbps", 2))
	}
	fmt.Fprintln(w, "GRO hold multiplier alpha (stride, Gbps/flow, false-loss fires):")
	for _, a := range []float64{0.5, 1, 2, 4} {
		id := fmt.Sprintf("ablations/gro_alpha=%g", a)
		fmt.Fprintf(w, "  alpha=%-4g %s Gbps  %s timeouts\n", a, x.val(id, "tput_gbps", 2), x.val(id, "timeout_fires", 0))
	}
	fmt.Fprintln(w, "switch buffer depth (stride, Gbps/flow, loss%):")
	for _, kb := range []int{256, 512, 2048, 8192} {
		id := fmt.Sprintf("ablations/buffer_kb=%d", kb)
		fmt.Fprintf(w, "  %4d KB: %s Gbps  %s%% loss\n", kb, x.val(id, "tput_gbps", 2), x.val(id, "loss_pct", 4))
	}
	fmt.Fprintln(w, "congestion control (stride, Gbps/flow):")
	for _, cc := range []string{"cubic", "reno", "dctcp"} {
		fmt.Fprintf(w, "  %-6s %s\n", cc, x.val("ablations/cc="+cc, "tput_gbps", 2))
	}
	fmt.Fprintln(w, "label mode (stride, Gbps/flow, leaf rules):")
	for _, mode := range []string{"per-host", "tunnel"} {
		id := "ablations/labels=" + mode
		fmt.Fprintf(w, "  %-8s %s Gbps  %s rules\n", mode, x.val(id, "tput_gbps", 2), x.val(id, "leaf_rules", 0))
	}
}

// renderSchemeMatrix lays out the scheme × workload × topology grid:
// one table per workload, schemes as rows, and per-topology mean FCT,
// p99 FCT, and elephant throughput as columns. Rows come from the
// cells actually present, so partial matrices (-scheme subsets,
// smoke grids) render without empty rows.
func renderSchemeMatrix(w io.Writer, x rx) {
	var schemes []string
	seen := map[string]bool{}
	for i := range x.r.Cells {
		c := &x.r.Cells[i]
		if c.Experiment != "scheme-matrix" {
			continue
		}
		name := strings.TrimPrefix(c.ID, "scheme-matrix/scheme=")
		if name == c.ID {
			continue
		}
		if i := strings.IndexByte(name, '/'); i >= 0 {
			name = name[:i]
		}
		if !seen[name] {
			seen[name] = true
			schemes = append(schemes, name)
		}
	}
	topos := presto.SchemeMatrixTopos()
	for _, wl := range presto.SchemeMatrixWorkloads() {
		any := false
		tb := metrics.Table{Header: []string{"scheme"}}
		for _, tp := range topos {
			tb.Header = append(tb.Header,
				tp+" FCT-mean(ms)", tp+" FCT-p99(ms)", tp+" tput(Gbps)")
		}
		for _, s := range schemes {
			row := []string{s}
			present := false
			for _, tp := range topos {
				id := presto.SchemeMatrixCellID(s, wl, tp)
				if x.r.Cell(id) != nil {
					present = true
				}
				row = append(row, x.val(id, "fct_ms_mean", 3),
					x.val(id, "fct_ms_p99", 3), x.val(id, "tput_gbps", 2))
			}
			if present {
				any = true
				tb.AddRow(row...)
			}
		}
		if any {
			fmt.Fprintf(w, "workload %s:\n%s", wl, tb.String())
		}
	}
}
