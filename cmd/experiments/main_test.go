package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"presto/internal/campaign"
)

// fastArgs keeps CLI tests quick: fig5 is the cheapest experiment and
// the simulated windows are cut far below the defaults.
func fastArgs(extra ...string) []string {
	return append([]string{"-run", "fig5", "-duration", "10ms", "-warmup", "5ms"}, extra...)
}

// TestStdoutIsMachineParseableJSON pipes stdout straight into the JSON
// parser: every progress/diagnostic line must be on stderr only.
func TestStdoutIsMachineParseableJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(fastArgs("-format", "json"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr.String())
	}
	var report campaign.Report
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\nstdout:\n%s", err, stdout.String())
	}
	if len(report.Cells) == 0 {
		t.Fatal("parsed report has no cells")
	}
	if !strings.Contains(stderr.String(), "[campaign]") {
		t.Error("expected campaign progress lines on stderr")
	}
}

// TestStdoutIsMachineParseableCSV does the same through encoding/csv.
func TestStdoutIsMachineParseableCSV(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(fastArgs("-format", "csv"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr.String())
	}
	rows, err := csv.NewReader(&stdout).ReadAll()
	if err != nil {
		t.Fatalf("stdout is not valid CSV: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("expected header + data rows, got %d rows", len(rows))
	}
	want := []string{"experiment", "cell", "metric", "mean", "stddev", "min", "max", "n"}
	for i, col := range want {
		if rows[0][i] != col {
			t.Fatalf("header[%d] = %q, want %q", i, rows[0][i], col)
		}
	}
}

// TestGateUpdateThenCheck regenerates a golden file and immediately
// gates the same configuration against it: no drift, exit 0.
func TestGateUpdateThenCheck(t *testing.T) {
	golden := filepath.Join(t.TempDir(), "mini.json")
	var stdout, stderr bytes.Buffer
	if code := run(fastArgs("-gate", golden, "-update"), &stdout, &stderr); code != 0 {
		t.Fatalf("update exit code = %d, stderr:\n%s", code, stderr.String())
	}
	if _, err := os.Stat(golden); err != nil {
		t.Fatalf("golden file not written: %v", err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run(fastArgs("-gate", golden), &stdout, &stderr); code != 0 {
		t.Fatalf("check exit code = %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "regression gate passed") {
		t.Errorf("expected gate-passed notice on stderr, got:\n%s", stderr.String())
	}
}

// TestGateFailsOnDrift perturbs a golden value beyond tolerance and
// expects exit code 1 with a per-metric diff on stderr.
func TestGateFailsOnDrift(t *testing.T) {
	golden := filepath.Join(t.TempDir(), "mini.json")
	var stdout, stderr bytes.Buffer
	if code := run(fastArgs("-gate", golden, "-update"), &stdout, &stderr); code != 0 {
		t.Fatalf("update exit code = %d, stderr:\n%s", code, stderr.String())
	}
	g, err := campaign.LoadGolden(golden)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := false
	for cell, ms := range g.Cells {
		for metric, v := range ms {
			if v != 0 {
				g.Cells[cell][metric] = v * 1.5
				perturbed = true
				break
			}
		}
		if perturbed {
			break
		}
	}
	if !perturbed {
		t.Fatal("no non-zero golden metric to perturb")
	}
	if err := g.Save(golden); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run(fastArgs("-gate", golden), &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "drifted beyond tolerance") {
		t.Errorf("expected drift diagnostics on stderr, got:\n%s", stderr.String())
	}
}

// TestReplicaFailureSetsExitCode forces every replica to time out and
// checks the non-zero exit code plus the failure report on stderr.
func TestReplicaFailureSetsExitCode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(fastArgs("-timeout", "1ns", "-format", "json"), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "replica(s) failed") {
		t.Errorf("expected failure summary on stderr, got:\n%s", stderr.String())
	}
	// stdout must still parse: failures are reported, not corrupting.
	var report campaign.Report
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("stdout is not valid JSON after failures: %v", err)
	}
	if len(report.FailedReplicas()) == 0 {
		t.Error("report records no failed replicas")
	}
}

// TestListPrintsExperiments sanity-checks -list output.
func TestListPrintsExperiments(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d", code)
	}
	for _, id := range []string{"fig1", "fig5", "table1", "ablations"} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

// TestUnknownExperimentIsUsageError checks the exit-code contract.
func TestUnknownExperimentIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "fig99"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "fig99") {
		t.Errorf("expected the unknown ID in the error, got:\n%s", stderr.String())
	}
}

// TestArtifactsWritten checks -out produces the three artifact files
// and that the manifest carries the spec hash from the report.
func TestArtifactsWritten(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if code := run(fastArgs("-format", "json", "-out", dir), &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr.String())
	}
	var report campaign.Report
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatalf("manifest missing: %v", err)
	}
	var manifest campaign.Manifest
	if err := json.Unmarshal(raw, &manifest); err != nil {
		t.Fatal(err)
	}
	if manifest.SpecHash != report.SpecHash {
		t.Errorf("manifest spec hash %q != report %q", manifest.SpecHash, report.SpecHash)
	}
	for _, name := range []string{"report.json", "report.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("artifact %s missing: %v", name, err)
		}
	}
}
