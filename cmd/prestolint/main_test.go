package main_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// buildTool compiles the prestolint binary into a temp dir and returns
// its path.
func buildTool(t *testing.T) string {
	t.Helper()
	tool := filepath.Join(t.TempDir(), "prestolint")
	cmd := exec.Command("go", "build", "-o", tool, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building prestolint: %v\n%s", err, out)
	}
	return tool
}

// vet runs `go vet -vettool=tool pkgs...` inside the fixture module
// and returns the combined output plus the exit code.
func vet(t *testing.T, tool string, pkgs ...string) (string, int) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "vetmod"))
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{"vet", "-vettool=" + tool}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// The fixture module has no dependencies; force module mode and
	// keep the run hermetic even if the environment sets GOFLAGS.
	cmd.Env = append(os.Environ(), "GOFLAGS=", "GO111MODULE=on")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running go vet: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

// TestVettoolFlagsBadPackage drives the real go vet -vettool pipeline
// against a known-bad fixture module and checks both the exit status
// and the diagnostic text.
func TestVettoolFlagsBadPackage(t *testing.T) {
	tool := buildTool(t)
	out, code := vet(t, tool, "./badclock")
	if code == 0 {
		t.Fatalf("go vet on bad fixture exited 0; output:\n%s", out)
	}
	for _, want := range []string{
		"[simclock]",
		"time.Now",
		"rand.Intn",
		"badclock.go",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("go vet output missing %q:\n%s", want, out)
		}
	}
}

// TestVettoolFlagsGeneratorPackage drives the pipeline against the
// generator-shaped fixture: spec-driven workload generation drawing
// from the global rand stream or reading the wall clock must be
// reported — the guarantee that keeps internal/workload/spec's
// generator deterministic per run seed.
func TestVettoolFlagsGeneratorPackage(t *testing.T) {
	tool := buildTool(t)
	out, code := vet(t, tool, "./badgen")
	if code == 0 {
		t.Fatalf("go vet on generator fixture exited 0; output:\n%s", out)
	}
	for _, want := range []string{
		"[simclock]",
		"rand.ExpFloat64",
		"time.Now",
		"badgen.go",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("go vet output missing %q:\n%s", want, out)
		}
	}
}

// TestVettoolPassesCleanPackage checks the clean fixture package comes
// back with exit status 0 and no diagnostics.
func TestVettoolPassesCleanPackage(t *testing.T) {
	tool := buildTool(t)
	out, code := vet(t, tool, "./clean")
	if code != 0 {
		t.Fatalf("go vet on clean fixture exited %d:\n%s", code, out)
	}
	if strings.Contains(out, "[simclock]") {
		t.Errorf("unexpected diagnostics on clean package:\n%s", out)
	}
}

// TestVersionHandshake checks the -V=full tool-identity handshake the
// go command uses to key its action cache.
func TestVersionHandshake(t *testing.T) {
	tool := buildTool(t)
	out, err := exec.Command(tool, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("-V=full: %v\n%s", err, out)
	}
	fields := strings.Fields(string(out))
	if len(fields) < 3 || fields[1] != "version" ||
		!strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Errorf("-V=full output %q does not match \"<name> version ... buildID=<id>\"", out)
	}
}

// TestFlagsHandshake checks the -flags handshake prints the JSON flag
// declarations cmd/go parses to learn which flags it may forward.
func TestFlagsHandshake(t *testing.T) {
	tool := buildTool(t)
	out, err := exec.Command(tool, "-flags").CombinedOutput()
	if err != nil {
		t.Fatalf("-flags: %v\n%s", err, out)
	}
	var decls []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &decls); err != nil {
		t.Fatalf("-flags printed invalid JSON %q: %v", out, err)
	}
	if len(decls) != 1 || decls[0].Name != "json" || !decls[0].Bool {
		t.Errorf("-flags = %q, want the boolean json flag declared", out)
	}
}

// TestVettoolNewAnalyzers drives the real go vet pipeline against one
// tripping fixture package per PR-8 analyzer.
func TestVettoolNewAnalyzers(t *testing.T) {
	tool := buildTool(t)
	cases := []struct {
		pkg   string
		wants []string
	}{
		{"./badlock", []string{"[lockorder]", "lock order cycle", "badlock.go"}},
		{"./badgoro", []string{"[goroleak]", "no reachable termination path", "badgoro.go"}},
		{"./badclose", []string{"[errdrop]", "discarded error from Close", "badclose.go"}},
		{"./badalloc", []string{"[hotalloc]", "appends through a bare slice", "badalloc.go"}},
	}
	for _, tc := range cases {
		out, code := vet(t, tool, tc.pkg)
		if code == 0 {
			t.Errorf("go vet on %s exited 0; output:\n%s", tc.pkg, out)
			continue
		}
		for _, want := range tc.wants {
			if !strings.Contains(out, want) {
				t.Errorf("go vet output for %s missing %q:\n%s", tc.pkg, want, out)
			}
		}
	}
}

// TestVettoolJSONMode checks -json forwarding: diagnostics come back
// as parseable per-package JSON on stdout and the run exits 0 even on
// a tripping package, so CI can archive findings without failing.
func TestVettoolJSONMode(t *testing.T) {
	tool := buildTool(t)
	out, code := vet(t, tool, "-json", "./badclose")
	if code != 0 {
		t.Fatalf("go vet -json on bad fixture exited %d, want 0 (JSON mode archives, the plain run gates):\n%s", code, out)
	}
	var found bool
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "{") {
			continue // go vet prints "# pkg" headers around tool output
		}
		var decoded map[string]map[string][]struct {
			Posn    string `json:"posn"`
			End     string `json:"end"`
			Message string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &decoded); err != nil {
			t.Fatalf("-json emitted unparseable line %q: %v", line, err)
		}
		for _, byAnalyzer := range decoded {
			for _, diags := range byAnalyzer["errdrop"] {
				if strings.Contains(diags.Message, "discarded error") && diags.Posn != "" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("-json output has no errdrop diagnostic for badclose:\n%s", out)
	}
}

// TestSuppressionBudget exercises the -suppressions -budget CI gate:
// under budget passes, over budget and reason-less allows fail.
func TestSuppressionBudget(t *testing.T) {
	tool := buildTool(t)
	dir := t.TempDir()
	src := `package p

import "os"

func touch(f *os.File) {
	f.Close() //prestolint:allow errdrop -- fixture exercising the budget counter
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	writeBudget := func(name string, allows int) string {
		path := filepath.Join(dir, name)
		body := `{"_comment": "test budget", "budget": {"errdrop": ` + strconv.Itoa(allows) + `}}`
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	pass := writeBudget("ok.json", 1)
	out, err := exec.Command(tool, "-suppressions", "-budget", pass, dir).CombinedOutput()
	if err != nil {
		t.Errorf("-budget within limit failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "suppression budget ok") {
		t.Errorf("in-budget run missing ok line:\n%s", out)
	}

	fail := writeBudget("tight.json", 0)
	out, err = exec.Command(tool, "-suppressions", "-budget", fail, dir).CombinedOutput()
	if err == nil {
		t.Errorf("-budget over limit exited 0:\n%s", out)
	}
	if !strings.Contains(string(out), "budget exceeded: errdrop has 1") {
		t.Errorf("over-budget run missing exceeded line:\n%s", out)
	}
}

// TestSuppressionsRequireReason checks a bare //prestolint:allow fails
// the -suppressions audit.
func TestSuppressionsRequireReason(t *testing.T) {
	tool := buildTool(t)
	dir := t.TempDir()
	src := `package p

import "os"

func touch(f *os.File) {
	f.Close() //prestolint:allow errdrop
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(tool, "-suppressions", dir).CombinedOutput()
	if err == nil {
		t.Errorf("-suppressions on reason-less allow exited 0:\n%s", out)
	}
	if !strings.Contains(string(out), "without a '-- reason' tail") {
		t.Errorf("audit output missing reason diagnostic:\n%s", out)
	}
}

// TestSuppressionsListing checks the suppression audit mode finds the
// repo's own annotations and reports them with file positions.
func TestSuppressionsListing(t *testing.T) {
	tool := buildTool(t)
	cmd := exec.Command(tool, "-suppressions", "testdata/vetmod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("-suppressions: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "0 suppression(s)") {
		t.Errorf("-suppressions on fixture module = %q, want 0 suppressions", out)
	}
}
