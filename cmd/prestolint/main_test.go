package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the prestolint binary into a temp dir and returns
// its path.
func buildTool(t *testing.T) string {
	t.Helper()
	tool := filepath.Join(t.TempDir(), "prestolint")
	cmd := exec.Command("go", "build", "-o", tool, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building prestolint: %v\n%s", err, out)
	}
	return tool
}

// vet runs `go vet -vettool=tool pkgs...` inside the fixture module
// and returns the combined output plus the exit code.
func vet(t *testing.T, tool string, pkgs ...string) (string, int) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "vetmod"))
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{"vet", "-vettool=" + tool}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// The fixture module has no dependencies; force module mode and
	// keep the run hermetic even if the environment sets GOFLAGS.
	cmd.Env = append(os.Environ(), "GOFLAGS=", "GO111MODULE=on")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running go vet: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

// TestVettoolFlagsBadPackage drives the real go vet -vettool pipeline
// against a known-bad fixture module and checks both the exit status
// and the diagnostic text.
func TestVettoolFlagsBadPackage(t *testing.T) {
	tool := buildTool(t)
	out, code := vet(t, tool, "./badclock")
	if code == 0 {
		t.Fatalf("go vet on bad fixture exited 0; output:\n%s", out)
	}
	for _, want := range []string{
		"[simclock]",
		"time.Now",
		"rand.Intn",
		"badclock.go",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("go vet output missing %q:\n%s", want, out)
		}
	}
}

// TestVettoolFlagsGeneratorPackage drives the pipeline against the
// generator-shaped fixture: spec-driven workload generation drawing
// from the global rand stream or reading the wall clock must be
// reported — the guarantee that keeps internal/workload/spec's
// generator deterministic per run seed.
func TestVettoolFlagsGeneratorPackage(t *testing.T) {
	tool := buildTool(t)
	out, code := vet(t, tool, "./badgen")
	if code == 0 {
		t.Fatalf("go vet on generator fixture exited 0; output:\n%s", out)
	}
	for _, want := range []string{
		"[simclock]",
		"rand.ExpFloat64",
		"time.Now",
		"badgen.go",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("go vet output missing %q:\n%s", want, out)
		}
	}
}

// TestVettoolPassesCleanPackage checks the clean fixture package comes
// back with exit status 0 and no diagnostics.
func TestVettoolPassesCleanPackage(t *testing.T) {
	tool := buildTool(t)
	out, code := vet(t, tool, "./clean")
	if code != 0 {
		t.Fatalf("go vet on clean fixture exited %d:\n%s", code, out)
	}
	if strings.Contains(out, "[simclock]") {
		t.Errorf("unexpected diagnostics on clean package:\n%s", out)
	}
}

// TestVersionHandshake checks the -V=full tool-identity handshake the
// go command uses to key its action cache.
func TestVersionHandshake(t *testing.T) {
	tool := buildTool(t)
	out, err := exec.Command(tool, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("-V=full: %v\n%s", err, out)
	}
	fields := strings.Fields(string(out))
	if len(fields) < 3 || fields[1] != "version" ||
		!strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Errorf("-V=full output %q does not match \"<name> version ... buildID=<id>\"", out)
	}
}

// TestFlagsHandshake checks the -flags handshake prints a JSON array.
func TestFlagsHandshake(t *testing.T) {
	tool := buildTool(t)
	out, err := exec.Command(tool, "-flags").CombinedOutput()
	if err != nil {
		t.Fatalf("-flags: %v\n%s", err, out)
	}
	if got := strings.TrimSpace(string(out)); got != "[]" {
		t.Errorf("-flags printed %q, want []", got)
	}
}

// TestSuppressionsListing checks the suppression audit mode finds the
// repo's own annotations and reports them with file positions.
func TestSuppressionsListing(t *testing.T) {
	tool := buildTool(t)
	cmd := exec.Command(tool, "-suppressions", "testdata/vetmod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("-suppressions: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "0 suppression(s)") {
		t.Errorf("-suppressions on fixture module = %q, want 0 suppressions", out)
	}
}
