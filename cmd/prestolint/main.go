// Command prestolint is the repository's custom vet tool: it runs the
// internal/analysis suite (simclock, maporder, niltracer, simtime)
// over packages handed to it by the go command. Invoke it through go
// vet so the build system supplies type information:
//
//	go build -o /tmp/prestolint ./cmd/prestolint
//	go vet -vettool=/tmp/prestolint ./...
//
// It speaks the same driver protocol as
// golang.org/x/tools/go/analysis/unitchecker — the -V=full and -flags
// handshakes plus a JSON vet.cfg per package — but is implemented
// entirely on the standard library (go/parser, go/types, go/importer)
// so it builds offline with no module downloads.
//
// Additional modes:
//
//	prestolint -suppressions [dir ...]
//	    list every //prestolint:allow annotation under the given
//	    directories (default .), sorted, so suppressions stay
//	    auditable
//	prestolint -list
//	    print the analyzer names and documentation
//
// Diagnostics go to stderr as "file:line:col: [analyzer] message",
// sorted by position; the exit status is 2 when any diagnostic is
// reported, 1 on operational errors, 0 otherwise.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"presto/internal/analysis"
	"presto/internal/analysis/suite"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prestolint: ")

	versionFlag := flag.String("V", "", "print version information (go vet handshake; only -V=full is supported)")
	flagsFlag := flag.Bool("flags", false, "print the tool's analyzer flags as JSON (go vet handshake)")
	suppressionsFlag := flag.Bool("suppressions", false, "list //prestolint:allow annotations under the given directories")
	listFlag := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Parse()

	switch {
	case *versionFlag != "":
		if *versionFlag != "full" {
			log.Fatalf("unsupported flag -V=%s", *versionFlag)
		}
		printVersion()
	case *flagsFlag:
		// No user-settable analyzer flags; the empty set tells go vet
		// to reject any flags it would otherwise forward.
		fmt.Println("[]")
	case *listFlag:
		for _, az := range suite.Analyzers() {
			fmt.Printf("%s: %s\n", az.Name, az.Doc)
		}
	case *suppressionsFlag:
		dirs := flag.Args()
		if len(dirs) == 0 {
			dirs = []string{"."}
		}
		if err := listSuppressions(dirs); err != nil {
			log.Fatal(err)
		}
	case flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".cfg"):
		runVet(flag.Arg(0))
	default:
		log.Fatalf("usage: go vet -vettool=$(which prestolint) ./... | prestolint -suppressions [dir ...] | prestolint -list")
	}
}

// printVersion implements the go command's -V=full tool-identity
// handshake: the output must be "<name> version devel ... buildID=<id>"
// so the content hash of the binary keys go vet's action cache.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel buildID=%x\n", exe, h.Sum(nil))
}

// vetConfig mirrors the JSON configuration cmd/go writes for each
// package it asks a vet tool to check.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

func runVet(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("parsing %s: %v", cfgFile, err)
	}

	// The suite exports no cross-package facts, so dependency passes
	// (VetxOnly) have nothing to compute: record the empty fact set so
	// go vet can cache the result and move on.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte("prestolint: no facts\n"), 0o666); err != nil {
				log.Fatal(err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	info := analysis.NewTypesInfo()
	var typeErr error
	conf := types.Config{
		Importer:  newVetImporter(fset, cfg),
		GoVersion: cfg.GoVersion,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if typeErr == nil {
		typeErr = err
	}
	if typeErr != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return
		}
		log.Fatalf("type-checking %s: %v", cfg.ImportPath, typeErr)
	}

	pkg := &analysis.Package{
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		ImportPath: cfg.ImportPath,
	}
	diags, err := analysis.RunAnalyzers(pkg, suite.Analyzers())
	if err != nil {
		log.Fatal(err)
	}
	writeVetx()
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		os.Exit(2)
	}
}

// vetImporter resolves imports from the export-data files listed in
// the vet config, using the compiler importer from the standard
// library.
type vetImporter struct {
	cfg  *vetConfig
	base types.Importer
}

func newVetImporter(fset *token.FileSet, cfg *vetConfig) *vetImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q in vet config", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	return &vetImporter{cfg: cfg, base: importer.ForCompiler(fset, compiler, lookup)}
}

func (v *vetImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := v.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return v.base.Import(path)
}

// listSuppressions prints every //prestolint:allow annotation found
// under dirs, sorted by file and line, so the exception list stays
// reviewable. Purely syntactic: no type information needed.
func listSuppressions(dirs []string) error {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				switch d.Name() {
				case ".git", "vendor":
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return err
			}
			files = append(files, f)
			return nil
		})
		if err != nil {
			return err
		}
	}
	sups := analysis.CollectSuppressions(fset, files)
	sort.Slice(sups, func(i, j int) bool {
		if sups[i].File != sups[j].File {
			return sups[i].File < sups[j].File
		}
		return sups[i].Line < sups[j].Line
	})
	for _, s := range sups {
		reason := s.Reason
		if reason == "" {
			reason = "(no reason given)"
		}
		fmt.Printf("%s:%d: allow %s -- %s\n", s.File, s.Line, strings.Join(s.Names, ","), reason)
	}
	fmt.Printf("%d suppression(s)\n", len(sups))
	return nil
}
