// Command prestolint is the repository's custom vet tool: it runs the
// internal/analysis suite (errdrop, goroleak, hotalloc, lockorder,
// maporder, niltracer, simclock, simtime) over packages handed to it
// by the go command. Invoke it through go vet so the build system
// supplies type information:
//
//	go build -o /tmp/prestolint ./cmd/prestolint
//	go vet -vettool=/tmp/prestolint ./...
//
// It speaks the same driver protocol as
// golang.org/x/tools/go/analysis/unitchecker — the -V=full and -flags
// handshakes plus a JSON vet.cfg per package — but is implemented
// entirely on the standard library (go/parser, go/types, go/importer)
// so it builds offline with no module downloads.
//
// Additional modes:
//
//	prestolint -suppressions [dir ...]
//	    list every //prestolint:allow annotation under the given
//	    directories (default .), sorted, so suppressions stay
//	    auditable; testdata subtrees (analyzer fixtures) are skipped
//	    unless named explicitly. Any annotation missing its
//	    "-- reason" tail fails the run with exit status 2.
//	prestolint -suppressions -budget lint_budget.json [dir ...]
//	    additionally enforce the per-analyzer suppression budget:
//	    if any analyzer has more //prestolint:allow annotations than
//	    the budget grants it, exit 2. This is the CI gate that makes
//	    growing the exception list a reviewed decision.
//	go vet -vettool=prestolint -json ./...
//	    emit diagnostics as one compact JSON object per package on
//	    stdout ({"pkg": {"analyzer": [{posn, end, message}]}}) and
//	    exit 0 even when diagnostics exist, so CI can archive the
//	    full finding set as an artifact while a separate non-JSON
//	    run gates the build.
//	prestolint -list
//	    print the analyzer names and documentation
//
// Diagnostics go to stderr as "file:line:col: [analyzer] message",
// sorted by position; the exit status is 2 when any diagnostic is
// reported, 1 on operational errors, 0 otherwise.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"presto/internal/analysis"
	"presto/internal/analysis/suite"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prestolint: ")

	versionFlag := flag.String("V", "", "print version information (go vet handshake; only -V=full is supported)")
	flagsFlag := flag.Bool("flags", false, "print the tool's analyzer flags as JSON (go vet handshake)")
	suppressionsFlag := flag.Bool("suppressions", false, "list //prestolint:allow annotations under the given directories")
	budgetFlag := flag.String("budget", "", "with -suppressions: enforce the per-analyzer allow budget in this JSON file")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON on stdout and exit 0 (go vet forwards this)")
	listFlag := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Parse()

	switch {
	case *versionFlag != "":
		if *versionFlag != "full" {
			log.Fatalf("unsupported flag -V=%s", *versionFlag)
		}
		printVersion()
	case *flagsFlag:
		// The handshake declares the flags go vet may forward to the
		// tool; everything else is rejected by the go command.
		fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit diagnostics as JSON on stdout and exit 0"}]`)
	case *listFlag:
		for _, az := range suite.Analyzers() {
			fmt.Printf("%s: %s\n", az.Name, az.Doc)
		}
	case *suppressionsFlag:
		dirs := flag.Args()
		if len(dirs) == 0 {
			dirs = []string{"."}
		}
		ok, err := listSuppressions(dirs, *budgetFlag)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			os.Exit(2)
		}
	case flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".cfg"):
		runVet(flag.Arg(0), *jsonFlag)
	default:
		log.Fatalf("usage: go vet -vettool=$(which prestolint) [-json] ./... | prestolint -suppressions [-budget lint_budget.json] [dir ...] | prestolint -list")
	}
}

// printVersion implements the go command's -V=full tool-identity
// handshake: the output must be "<name> version devel ... buildID=<id>"
// so the content hash of the binary keys go vet's action cache.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close() //prestolint:allow errdrop -- binary opened read-only for hashing; close cannot lose data
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel buildID=%x\n", exe, h.Sum(nil))
}

// vetConfig mirrors the JSON configuration cmd/go writes for each
// package it asks a vet tool to check.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

func runVet(cfgFile string, asJSON bool) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("parsing %s: %v", cfgFile, err)
	}

	// The suite exports no cross-package facts, so dependency passes
	// (VetxOnly) have nothing to compute: record the empty fact set so
	// go vet can cache the result and move on.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte("prestolint: no facts\n"), 0o666); err != nil {
				log.Fatal(err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	info := analysis.NewTypesInfo()
	var typeErr error
	conf := types.Config{
		Importer:  newVetImporter(fset, cfg),
		GoVersion: cfg.GoVersion,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if typeErr == nil {
		typeErr = err
	}
	if typeErr != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return
		}
		log.Fatalf("type-checking %s: %v", cfg.ImportPath, typeErr)
	}

	pkg := &analysis.Package{
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		ImportPath: cfg.ImportPath,
	}
	diags, err := analysis.RunAnalyzers(pkg, suite.Analyzers())
	if err != nil {
		log.Fatal(err)
	}
	writeVetx()
	if asJSON {
		emitJSON(fset, cfg.ImportPath, diags)
		return // JSON mode never fails the build; CI archives, a plain run gates
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		os.Exit(2)
	}
}

// jsonDiagnostic is one finding in -json output, shaped like the
// unitchecker JSON protocol so existing vet-output tooling parses it.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	End     string `json:"end,omitempty"`
	Message string `json:"message"`
}

// emitJSON prints the package's diagnostics as a single compact JSON
// object on stdout: {"importpath": {"analyzer": [{posn, end, message}]}}.
// One line per package makes the aggregate CI artifact NDJSON.
func emitJSON(fset *token.FileSet, importPath string, diags []analysis.Diagnostic) {
	byAnalyzer := make(map[string][]jsonDiagnostic)
	for _, d := range diags {
		jd := jsonDiagnostic{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		}
		if d.End.IsValid() {
			jd.End = fset.Position(d.End).String()
		}
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jd)
	}
	out := map[string]map[string][]jsonDiagnostic{importPath: byAnalyzer}
	data, err := json.Marshal(out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", data)
}

// vetImporter resolves imports from the export-data files listed in
// the vet config, using the compiler importer from the standard
// library.
type vetImporter struct {
	cfg  *vetConfig
	base types.Importer
}

func newVetImporter(fset *token.FileSet, cfg *vetConfig) *vetImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q in vet config", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	return &vetImporter{cfg: cfg, base: importer.ForCompiler(fset, compiler, lookup)}
}

func (v *vetImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := v.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return v.base.Import(path)
}

// lintBudget mirrors lint_budget.json: the number of
// //prestolint:allow annotations each analyzer is granted. Analyzers
// absent from the map have a budget of zero.
type lintBudget struct {
	Comment string         `json:"_comment"`
	Budget  map[string]int `json:"budget"`
}

// listSuppressions prints every //prestolint:allow annotation found
// under dirs, sorted by file and line, so the exception list stays
// reviewable. Purely syntactic: no type information needed. testdata
// subtrees are skipped during the walk (analyzer fixtures suppress
// findings on purpose) unless a testdata path is named explicitly.
//
// The boolean result is the gate: false when any annotation is missing
// its "-- reason" tail, or — when budgetPath is non-empty — when an
// analyzer's suppression count exceeds its budget.
func listSuppressions(dirs []string, budgetPath string) (bool, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				switch d.Name() {
				case ".git", "vendor":
					return filepath.SkipDir
				case "testdata":
					if path != dir {
						return filepath.SkipDir
					}
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return err
			}
			files = append(files, f)
			return nil
		})
		if err != nil {
			return false, err
		}
	}
	sups := analysis.CollectSuppressions(fset, files)
	sort.Slice(sups, func(i, j int) bool {
		if sups[i].File != sups[j].File {
			return sups[i].File < sups[j].File
		}
		return sups[i].Line < sups[j].Line
	})
	ok := true
	for _, s := range sups {
		reason := s.Reason
		if reason == "" {
			reason = "(no reason given)"
		}
		fmt.Printf("%s:%d: allow %s -- %s\n", s.File, s.Line, strings.Join(s.Names, ","), reason)
	}
	fmt.Printf("%d suppression(s)\n", len(sups))
	for _, s := range sups {
		if s.Reason == "" {
			fmt.Printf("%s:%d: //prestolint:allow without a '-- reason' tail\n", s.File, s.Line)
			ok = false
		}
	}
	if budgetPath != "" {
		budgetOK, err := checkBudget(budgetPath, sups)
		if err != nil {
			return false, err
		}
		ok = ok && budgetOK
	}
	return ok, nil
}

// checkBudget counts suppressions per canonical analyzer name and
// compares against the budget file. A multi-analyzer allow counts once
// toward each named analyzer.
func checkBudget(path string, sups []analysis.Suppression) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var budget lintBudget
	if err := json.Unmarshal(data, &budget); err != nil {
		return false, fmt.Errorf("parsing %s: %v", path, err)
	}

	canonical := make(map[string]string)
	for _, az := range suite.Analyzers() {
		canonical[az.Name] = az.Name
		for _, alias := range az.Aliases {
			canonical[alias] = az.Name
		}
	}
	counts := make(map[string]int)
	for _, s := range sups {
		for _, name := range s.Names {
			if c, ok := canonical[name]; ok {
				name = c
			}
			counts[name]++
		}
	}

	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	ok := true
	for _, name := range names {
		allowed := budget.Budget[name]
		if counts[name] > allowed {
			fmt.Printf("budget exceeded: %s has %d suppression(s), budget grants %d — fix the findings or raise the budget in %s with review\n",
				name, counts[name], allowed, path)
			ok = false
		}
	}
	if ok {
		fmt.Printf("suppression budget ok (%s)\n", path)
	}
	return ok, nil
}
