// Package badalloc is a fixture package whose noalloc-annotated
// function allocates: the driver test asserts go vet -vettool reports
// it through the hotalloc analyzer.
package badalloc

// Push is declared allocation-free but appends through a bare slice,
// which grows the backing array on the hot path.
//
//prestolint:noalloc
func Push(buf []int, v int) []int {
	return append(buf, v)
}
