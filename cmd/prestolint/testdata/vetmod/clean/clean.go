// Package clean is a fixture package with nothing to report: the
// driver test asserts go vet -vettool exits zero on it.
package clean

import "time"

// Timeout is an inert duration value; constructing durations is fine,
// only reading or waiting on the wall clock is banned.
const Timeout = 50 * time.Millisecond

// Scale multiplies a duration without touching the clock.
func Scale(d time.Duration, n int) time.Duration {
	return d * time.Duration(n)
}
