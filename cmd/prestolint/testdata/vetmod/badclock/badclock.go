// Package badclock is a known-bad fixture for the prestolint driver
// test: it is not a harness package, so its wall-clock and global-rand
// uses must be reported through the real go vet -vettool pipeline.
package badclock

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock in simulator-layer code.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Draw uses the global, seed-independent rand stream.
func Draw() int {
	return rand.Intn(10)
}
