// Package badgoro is a fixture package spawning a goroutine with no
// termination path: the driver test asserts go vet -vettool reports
// it through the goroleak analyzer.
package badgoro

// Pump drains ch forever with no way to stop; the goroutine outlives
// every shutdown.
func Pump(ch chan int) {
	go func() {
		for {
			<-ch
		}
	}()
}
