// Package badclose is a fixture package that drops a Close error: the
// driver test asserts go vet -vettool reports it through the errdrop
// analyzer.
package badclose

import "os"

// Touch creates a file and discards the Close error, losing any
// write-back failure.
func Touch(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Close()
	return nil
}
