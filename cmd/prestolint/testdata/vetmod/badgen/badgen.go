// Package badgen is a known-bad fixture shaped like spec-driven
// workload generation: arrival sampling must come from the run-seeded
// RNG streams and the simulated clock, so global rand draws and
// wall-clock reads in a generator are exactly what simclock exists to
// catch (the real generator lives in internal/workload/spec, which is
// not harness-exempt).
package badgen

import (
	"math/rand"
	"time"
)

// ArrivalGap draws an inter-arrival gap from the global,
// seed-independent rand stream.
func ArrivalGap(mean float64) time.Duration {
	return time.Duration(mean * rand.ExpFloat64())
}

// FlowStart stamps a flow with the wall clock instead of the
// simulated clock.
func FlowStart() int64 {
	return time.Now().UnixNano()
}
