// Package badlock is a fixture package with an AB-BA lock-order
// cycle: the driver test asserts go vet -vettool reports it through
// the lockorder analyzer.
package badlock

import "sync"

// Pair guards two resources with two mutexes and nests them in both
// orders, which is a latent deadlock under concurrency.
type Pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *Pair) AB() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
}

func (p *Pair) BA() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock()
	defer p.a.Unlock()
}
