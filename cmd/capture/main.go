// Command capture runs a small workload, captures every packet
// arriving at one receiver into a classic pcap file (openable in
// tcpdump/Wireshark — flowcell IDs ride in TCP option 253), and
// prints the offline trace analysis: per-flow goodput, reordering
// fraction (the §5 flowlet-trace metric), and flowlet sizes.
//
//	capture -system flowlet100 -out /tmp/presto.pcap
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"presto/internal/cluster"
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/topo"
	"presto/internal/trace"
)

func main() {
	var (
		system   = flag.String("system", "presto", "presto | ecmp | flowlet100 | flowlet500 | presto-ecmp")
		out      = flag.String("out", "capture.pcap", "pcap output path")
		duration = flag.Duration("duration", 50*time.Millisecond, "simulated capture window")
		seed     = flag.Uint64("seed", 1, "random seed")
		gap      = flag.Duration("gap", 500*time.Microsecond, "flowlet gap for the offline analysis")
	)
	flag.Parse()

	cfg := cluster.Config{
		Topology: topo.TwoTierClos(2, 2, 2, 1, topo.LinkConfig{}),
		Seed:     *seed,
	}
	switch strings.ToLower(*system) {
	case "presto":
		cfg.Scheme = cluster.Presto
	case "ecmp":
		cfg.Scheme = cluster.ECMP
	case "flowlet100":
		cfg.Scheme = cluster.Flowlet
		cfg.FlowletGap = 100 * sim.Microsecond
	case "flowlet500":
		cfg.Scheme = cluster.Flowlet
		cfg.FlowletGap = 500 * sim.Microsecond
	case "presto-ecmp":
		cfg.Scheme = cluster.PrestoECMP
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}

	c := cluster.New(cfg)
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	w := trace.NewWriter(f)
	var recs []trace.Record
	c.TapHost(2, func(at sim.Time, p *packet.Packet) {
		recs = append(recs, trace.Record{At: at, Packet: p.Clone()})
		if err := w.WritePacket(at, p); err != nil {
			fmt.Fprintln(os.Stderr, "pcap write:", err)
			os.Exit(1)
		}
	})

	// Two competing elephants into the tapped receiver's leaf create
	// the cross-path skew worth capturing.
	conn := c.Dial(0, 2)
	conn.SetUnlimited(true)
	bg := c.Dial(1, 3)
	bg.SetUnlimited(true)
	c.Eng.Run(sim.FromDuration(*duration))

	fmt.Printf("captured %d frames to %s (%v simulated)\n\n", w.Count(), *out, *duration)
	a := trace.Analyze(recs)
	flows := make([]packet.FlowKey, 0, len(a.Flows))
	for f := range a.Flows {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].String() < flows[j].String() })
	for _, f := range flows {
		fs := a.Flows[f]
		fmt.Printf("flow %v:\n", fs.Flow)
		fmt.Printf("  %d packets, %d bytes, %.2f Gbps goodput\n", fs.Packets, fs.Bytes, fs.Goodput())
		fmt.Printf("  %d flowcells, %.1f%% packets reordered, %d retransmissions\n",
			fs.Flowcells, fs.ReorderFraction()*100, fs.Retransmissions)
		sizes := trace.Flowlets(recs, fs.Flow, sim.FromDuration(*gap))
		if len(sizes) > 1 {
			fmt.Printf("  %d flowlets at a %v gap; largest %d bytes\n", len(sizes), *gap, maxInt(sizes))
		}
	}
	if a.InterArrival.N() > 0 {
		fmt.Printf("\ninter-arrival (us): %s\n", a.InterArrival.Summary("us"))
	}
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
