// Command capture runs a workload and records every flow start into a
// replayable flow log — the presto-workload/1 trace format that a
// spec's trace source (or the `trace` preset) feeds back through the
// generator, closing the capture→replay loop used by
// examples/tracedriven. It can additionally capture every packet
// arriving at one receiver into a classic pcap file (openable in
// tcpdump/Wireshark — flowcell IDs ride in TCP option 253) and print
// the offline trace analysis: per-flow goodput, reordering fraction
// (the §5 flowlet-trace metric), and flowlet sizes.
//
//	capture -flows flows.csv                          # record mice-heavy flow starts
//	capture -workload examples/specs/incast32.json -flows flows.jsonl
//	capture -system flowlet100 -analyze -out /tmp/presto.pcap
//
// The flow-log encoding follows the -flows extension: .jsonl writes
// JSON Lines, anything else CSV. Times are normalized so the first
// flow starts at 0; replay it with a spec whose trace.path points at
// the file. The packet-level outputs (pcap + analysis) are opt-in via
// -out and -analyze.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"presto/internal/cluster"
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/topo"
	"presto/internal/trace"
	wspec "presto/internal/workload/spec"
)

func main() {
	var (
		system   = flag.String("system", "presto", "presto | ecmp | flowlet100 | flowlet500 | presto-ecmp")
		workload = flag.String("workload", "mice-heavy", "workload-spec preset name or spec.json path to drive the capture")
		flows    = flag.String("flows", "capture.flows.csv", "replayable flow-start log output (.jsonl → JSONL, else CSV; empty = skip)")
		out      = flag.String("out", "", "pcap output path (empty = skip packet capture)")
		analyze  = flag.Bool("analyze", false, "print the offline per-flow trace analysis of the tapped receiver")
		duration = flag.Duration("duration", 50*time.Millisecond, "simulated capture window")
		seed     = flag.Uint64("seed", 1, "random seed")
		gap      = flag.Duration("gap", 500*time.Microsecond, "flowlet gap for the offline analysis")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := cluster.Config{
		Topology: topo.TwoTierClos(2, 2, 2, 1, topo.LinkConfig{}),
		Seed:     *seed,
	}
	switch strings.ToLower(*system) {
	case "presto":
		cfg.Scheme = cluster.Presto
	case "ecmp":
		cfg.Scheme = cluster.ECMP
	case "flowlet100":
		cfg.Scheme = cluster.Flowlet
		cfg.FlowletGap = 100 * sim.Microsecond
	case "flowlet500":
		cfg.Scheme = cluster.Flowlet
		cfg.FlowletGap = 500 * sim.Microsecond
	case "presto-ecmp":
		cfg.Scheme = cluster.PrestoECMP
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}

	ws, err := wspec.Resolve(*workload)
	if err != nil {
		fail(fmt.Errorf("workload: %w", err))
	}

	c := cluster.New(cfg)

	// Packet tap at host 2, feeding the pcap writer and/or the offline
	// analysis — only when either output is requested.
	var recs []trace.Record
	var pcap *trace.Writer
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fail(fmt.Errorf("closing %s: %w", *out, err))
			}
		}()
		pcap = trace.NewWriter(f)
	}
	if pcap != nil || *analyze {
		c.TapHost(2, func(at sim.Time, p *packet.Packet) {
			if *analyze {
				recs = append(recs, trace.Record{At: at, Packet: p.Clone()})
			}
			if pcap != nil {
				if err := pcap.WritePacket(at, p); err != nil {
					fail(fmt.Errorf("pcap write: %w", err))
				}
			}
		})
	}

	g, err := wspec.Compile(ws, c, *seed)
	if err != nil {
		fail(err)
	}
	var starts []wspec.FlowStart
	if *flows != "" {
		g.OnFlowStart = func(f wspec.FlowStart) { starts = append(starts, f) }
	}
	g.Start(sim.FromDuration(*duration))
	c.Eng.Run(sim.FromDuration(*duration))

	fmt.Printf("workload %s (spec %s) on %s: %v simulated\n", ws.Name, ws.Hash(), *system, *duration)
	for _, cr := range g.Results(c.Eng.Now()) {
		fmt.Printf("  client %-13s started=%d finished=%d bytes=%d\n", cr.ID+":", cr.Started, cr.Finished, cr.BytesMoved)
	}

	if *flows != "" {
		if err := writeFlowLog(*flows, starts); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d flow starts to %s (replay with a spec trace source)\n", len(starts), *flows)
	}
	if pcap != nil {
		fmt.Printf("captured %d frames to %s\n", pcap.Count(), *out)
	}
	if *analyze {
		printAnalysis(recs, sim.FromDuration(*gap), *gap)
	}
}

// writeFlowLog writes the recorded starts, normalized so the first
// flow is at t=0 (replay re-anchors at the trace client's window
// start anyway), choosing the encoding by file extension.
func writeFlowLog(path string, starts []wspec.FlowStart) error {
	if len(starts) == 0 {
		return fmt.Errorf("no flow starts recorded; nothing to write to %s", path)
	}
	base := starts[0].At
	out := make([]wspec.FlowStart, len(starts))
	for i, f := range starts {
		f.At -= base
		out[i] = f
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = wspec.WriteFlowLogJSONL(f, out)
	} else {
		err = wspec.WriteFlowLogCSV(f, out)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// printAnalysis prints the classic offline trace analysis of the
// tapped receiver's packet stream.
func printAnalysis(recs []trace.Record, flowletGap sim.Time, gap time.Duration) {
	fmt.Println()
	a := trace.Analyze(recs)
	flows := make([]packet.FlowKey, 0, len(a.Flows))
	for f := range a.Flows {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].String() < flows[j].String() })
	for _, f := range flows {
		fs := a.Flows[f]
		fmt.Printf("flow %v:\n", fs.Flow)
		fmt.Printf("  %d packets, %d bytes, %.2f Gbps goodput\n", fs.Packets, fs.Bytes, fs.Goodput())
		fmt.Printf("  %d flowcells, %.1f%% packets reordered, %d retransmissions\n",
			fs.Flowcells, fs.ReorderFraction()*100, fs.Retransmissions)
		sizes := trace.Flowlets(recs, fs.Flow, flowletGap)
		if len(sizes) > 1 {
			fmt.Printf("  %d flowlets at a %v gap; largest %d bytes\n", len(sizes), gap, maxInt(sizes))
		}
	}
	if a.InterArrival.N() > 0 {
		fmt.Printf("\ninter-arrival (us): %s\n", a.InterArrival.Summary("us"))
	}
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
