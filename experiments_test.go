package presto

import (
	"testing"

	"presto/internal/sim"
)

// fastOpt shrinks windows so the whole experiment suite stays quick;
// the cmd/experiments binary uses the full defaults.
func fastOpt(seed uint64) Options {
	return Options{
		Seed:         seed,
		Warmup:       20 * sim.Millisecond,
		Duration:     60 * sim.Millisecond,
		MiceInterval: 4 * sim.Millisecond,
	}
}

func TestScalabilityPrestoTracksOptimal(t *testing.T) {
	for _, paths := range []int{2, 4} {
		pr := RunScalability(SysPresto, paths, fastOpt(1))
		op := RunScalability(SysOptimal, paths, fastOpt(1))
		if pr.MeanTput < 0.9*op.MeanTput {
			t.Errorf("paths=%d: presto %.2f vs optimal %.2f Gbps", paths, pr.MeanTput, op.MeanTput)
		}
		if pr.MeanTput < 8 {
			t.Errorf("paths=%d: presto only %.2f Gbps", paths, pr.MeanTput)
		}
		if pr.Fairness < 0.95 {
			t.Errorf("paths=%d: presto fairness %.3f", paths, pr.Fairness)
		}
	}
}

func TestScalabilityECMPLagsPresto(t *testing.T) {
	// With 8 flows over 8 paths, ECMP hash collisions should cost
	// throughput relative to Presto (Figure 7's gap).
	ec := RunScalability(SysECMP, 8, fastOpt(2))
	pr := RunScalability(SysPresto, 8, fastOpt(2))
	if ec.MeanTput >= pr.MeanTput {
		t.Errorf("ECMP %.2f >= Presto %.2f Gbps at 8 paths", ec.MeanTput, pr.MeanTput)
	}
}

func TestOversubscriptionAllSchemesProgress(t *testing.T) {
	for _, sys := range []System{SysECMP, SysPresto, SysOptimal} {
		r := RunOversubscription(sys, 4, fastOpt(3))
		// 4 flows over 2 spines: per-flow ~5 Gbps at best.
		if r.MeanTput < 1.5 {
			t.Errorf("%v: %.2f Gbps under 2:1 oversubscription", sys, r.MeanTput)
		}
	}
}

func TestWorkloadStride(t *testing.T) {
	r := RunWorkload(SysPresto, Stride, fastOpt(4))
	if r.MeanTput < 8 {
		t.Errorf("presto stride %.2f Gbps", r.MeanTput)
	}
	if r.FCT == nil || r.FCT.N() == 0 {
		t.Fatal("no mice samples")
	}
	if r.RTT.N() == 0 {
		t.Fatal("no RTT samples")
	}
}

func TestWorkloadShuffle(t *testing.T) {
	r := RunWorkload(SysPresto, Shuffle, fastOpt(5))
	if r.MeanTput <= 0 {
		t.Fatal("shuffle produced no transfer throughput")
	}
}

func TestGROMicrobenchContrast(t *testing.T) {
	off := RunGROMicrobench(true, fastOpt(6))
	pre := RunGROMicrobench(false, fastOpt(6))
	// Figure 5a: Presto GRO masks reordering completely; official GRO
	// leaks it.
	if pre.OOOCounts.Max() != 0 {
		t.Errorf("presto GRO exposed reordering: max OOO %v", pre.OOOCounts.Max())
	}
	if off.OOOCounts.Percentile(90) == 0 {
		t.Error("official GRO shows no reordering — microbenchmark broken")
	}
	// Figure 5b: Presto pushes much larger segments.
	if pre.SegSizes.Mean() < 2*off.SegSizes.Mean() {
		t.Errorf("segment sizes: presto %.1fKB vs official %.1fKB", pre.SegSizes.Mean(), off.SegSizes.Mean())
	}
	// §5: official GRO at roughly half the goodput.
	if off.MeanTput >= pre.MeanTput {
		t.Errorf("official GRO %.2f >= presto GRO %.2f Gbps", off.MeanTput, pre.MeanTput)
	}
}

func TestCPUOverheadWithinBudget(t *testing.T) {
	pre := RunCPUOverhead(true, fastOpt(7))
	off := RunCPUOverhead(false, fastOpt(7))
	if pre.MeanTput < 8 || off.MeanTput < 8 {
		t.Fatalf("stride not at line rate: presto %.2f, official %.2f", pre.MeanTput, off.MeanTput)
	}
	// Figure 6: Presto adds a modest CPU premium over official GRO
	// with no reordering (paper: ~6%).
	delta := pre.Mean - off.Mean
	if delta < 0 || delta > 20 {
		t.Errorf("CPU overhead delta = %.1f%% (presto %.1f%%, official %.1f%%)", delta, pre.Mean, off.Mean)
	}
}

func TestFlowletSizesSkewed(t *testing.T) {
	r := RunFlowletSizes(2, 500*sim.Microsecond, 16<<20, fastOpt(8))
	if r.Count < 2 {
		t.Skipf("only %d flowlets formed", r.Count)
	}
	// Figure 1's point: flowlet sizes are highly non-uniform — the
	// largest flowlet dominates the transfer.
	if r.LargestFraction < 0.2 {
		t.Errorf("largest flowlet only %.2f of transfer; expected heavy skew", r.LargestFraction)
	}
}

func TestTraceRuns(t *testing.T) {
	r := RunTrace(SysPresto, fastOpt(9))
	if r.Flows < 50 {
		t.Fatalf("only %d trace flows", r.Flows)
	}
	if r.MiceFCT.N() < 20 {
		t.Fatalf("only %d mice FCT samples", r.MiceFCT.N())
	}
}

func TestNorthSouthRuns(t *testing.T) {
	r := RunNorthSouth(SysPresto, fastOpt(10))
	if r.MiceFCT.N() == 0 {
		t.Fatal("no east-west mice under north-south cross traffic")
	}
	if r.MeanTput < 4 {
		t.Errorf("east-west stride %.2f Gbps under cross traffic", r.MeanTput)
	}
}

func TestFailoverStages(t *testing.T) {
	r := RunFailover(FailL1L4, fastOpt(11))
	if r.SymmetryTput < 7 {
		t.Errorf("symmetry stage %.2f Gbps", r.SymmetryTput)
	}
	// Failover and weighted stages must keep traffic flowing despite
	// the dead link (Figure 17: "reasonable average throughput at each
	// stage").
	if r.FailoverTput < 2 {
		t.Errorf("failover stage %.2f Gbps", r.FailoverTput)
	}
	if r.WeightedTput < 4 {
		t.Errorf("weighted stage %.2f Gbps", r.WeightedTput)
	}
	if r.SymmetryRTT.N() == 0 || r.WeightedRTT.N() == 0 {
		t.Error("missing stage RTT samples")
	}
}

func TestGRODisabledWall(t *testing.T) {
	gbps, cpu := GRODisabledThroughput(fastOpt(12))
	if gbps < 4.5 || gbps > 7.5 {
		t.Errorf("GRO-disabled wall at %.2f Gbps, want 5.5-7", gbps)
	}
	if cpu < 0.9 {
		t.Errorf("GRO-disabled CPU %.2f, want saturated", cpu)
	}
}

func TestSystemStrings(t *testing.T) {
	for sys, want := range map[System]string{
		SysECMP: "ECMP", SysMPTCP: "MPTCP", SysPresto: "Presto",
		SysOptimal: "Optimal", SysFlowlet100: "Flowlet-100us",
		SysFlowlet500: "Flowlet-500us", SysPrestoECMP: "Presto+ECMP",
		SysPerPacket: "PerPacket",
	} {
		if sys.String() != want {
			t.Errorf("%s -> %q", sys.SchemeName(), sys.String())
		}
	}
	for w, want := range map[WorkloadKind]string{
		Stride: "stride", Shuffle: "shuffle", Random: "random", Bijection: "bijection",
	} {
		if w.String() != want {
			t.Errorf("workload %d -> %q", w, w.String())
		}
	}
}
