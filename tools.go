//go:build tools

// Package tools pins build-tool dependencies in go.mod so CI and
// developers install the exact same versions. The file never builds
// (the tools tag is never set); it exists so `go mod` tracks the tool
// modules and `go install <pkg>` inside the repo resolves to the
// pinned version:
//
//	go mod download honnef.co/go/tools   # records the hash in go.sum
//	go install honnef.co/go/tools/cmd/staticcheck
package tools

import (
	_ "honnef.co/go/tools/cmd/staticcheck" // staticcheck 2025.1.1
)
