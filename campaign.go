package presto

import (
	"fmt"
	"strings"

	"presto/internal/campaign"
	"presto/internal/cluster"
	"presto/internal/fabric"
	"presto/internal/gro"
	"presto/internal/metrics"
	"presto/internal/sim"
	"presto/internal/tcp"
	"presto/internal/workload"
)

// This file exposes the paper's evaluation as a declarative campaign:
// every figure/table becomes a set of campaign cells (one simulator
// run per parameter point), replicated over seeds and executed on
// internal/campaign's worker pool. cmd/experiments drives all output
// through it; examples can build specs directly.

// scaleSystems are the four systems the scalability, oversubscription,
// and workload sweeps compare (the paper's §4 lineup).
var scaleSystems = []System{SysECMP, SysMPTCP, SysPresto, SysOptimal}

// workloads is the synthetic workload sweep order of Figure 15.
var workloads = []WorkloadKind{Shuffle, Random, Stride, Bijection}

// campaignBuilders maps experiment ID → cell builder, in render order.
var campaignBuilders = []struct {
	id    string
	title string
	cells func(opt Options) []campaign.Cell
}{
	{"fig1", "Flowlet sizes vs competing flows (500us gap)", fig1Cells},
	{"fig5", "GRO reordering microbenchmark (OOO counts, segment sizes)", fig5Cells},
	{"fig6", "Receiver CPU overhead at line rate", fig6Cells},
	{"fig7", "Scalability: throughput vs path count", fig7Cells},
	{"fig8", "Scalability: RTT distribution", fig8Cells},
	{"fig9", "Scalability: loss rate and fairness", fig9Cells},
	{"fig10", "Oversubscription: throughput", fig10Cells},
	{"fig11", "Oversubscription: RTT distribution", fig11Cells},
	{"fig12", "Oversubscription: loss rate and fairness", fig12Cells},
	{"fig13", "Flowlet switching vs Presto (stride)", fig13Cells},
	{"fig14", "Presto shadow-MAC vs Presto+ECMP (stride)", fig14Cells},
	{"fig15", "Elephant throughput across workloads", fig15Cells},
	{"fig16", "Mice FCT across workloads", fig16Cells},
	{"table1", "Trace-driven mice FCT (normalized to ECMP)", table1Cells},
	{"table2", "North-south cross traffic: east-west mice FCT", table2Cells},
	{"fig17", "Failure handling: throughput per stage", fig17Cells},
	{"fig18", "Failure handling: RTT per stage (bijection)", fig18Cells},
	{"ablations", "Design-choice ablations (flowcell size, GRO alpha, buffers, DCTCP, tunnels)", ablationCells},
	{"podtraffic", "Pod-scale cross-pod elephants on a 3-tier Clos (honors -shards)", podtrafficCells},
	{"scheme-matrix", "Scheme registry × workload × topology comparison matrix", schemeMatrixCells},
}

// CampaignExperimentIDs lists the experiment IDs in render order.
func CampaignExperimentIDs() []string {
	out := make([]string, len(campaignBuilders))
	for i, b := range campaignBuilders {
		out[i] = b.id
	}
	return out
}

// CampaignExperimentTitle returns the human title for an experiment
// ID ("" when unknown).
func CampaignExperimentTitle(id string) string {
	for _, b := range campaignBuilders {
		if b.id == id {
			return b.title
		}
	}
	return ""
}

// CampaignSpec builds the campaign for an experiment selection: "all"
// or a comma-separated list of IDs (fig1, fig5, ..., table1, table2,
// ablations). opt seeds each cell's Options; opt.Seed itself is
// ignored — the spec's Seeds field decides replication. Execution
// knobs (Seeds, Parallelism, CellTimeout, Progress, Telemetry) are
// left for the caller to fill in on the returned spec.
func CampaignSpec(sel string, opt Options) (*campaign.Spec, error) {
	opt.fill()
	var ids []string
	if strings.ToLower(sel) == "all" {
		ids = CampaignExperimentIDs()
	} else {
		for _, id := range strings.Split(strings.ToLower(sel), ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if CampaignExperimentTitle(id) == "" {
				return nil, fmt.Errorf("unknown experiment %q (known: %s, all)", id, strings.Join(CampaignExperimentIDs(), ", "))
			}
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			return nil, fmt.Errorf("empty experiment selection %q", sel)
		}
	}
	spec := &campaign.Spec{
		Name: "experiments/" + strings.Join(ids, ","),
		// Workload knobs are folded into the spec hash so golden
		// envelopes detect runs taken with different windows.
		Params: map[string]string{
			"duration":      opt.Duration.String(),
			"warmup":        opt.Warmup.String(),
			"mice_interval": opt.MiceInterval.String(),
		},
	}
	for _, id := range ids {
		for _, b := range campaignBuilders {
			if b.id == id {
				spec.Cells = append(spec.Cells, b.cells(opt)...)
			}
		}
	}
	return spec, nil
}

// RunCampaign executes a spec — the facade over internal/campaign.
func RunCampaign(spec *campaign.Spec) (*campaign.Report, error) {
	return campaign.Run(spec)
}

// WorkloadCell builds a single campaign cell running one system ×
// workload on the testbed — cmd/prestosim's seed-replication unit.
func WorkloadCell(sys System, kind WorkloadKind, opt Options) campaign.Cell {
	return campaign.Cell{
		Experiment: "workload",
		ID:         fmt.Sprintf("workload/wl=%v/sys=%v", kind, sys),
		Run: func(seed uint64) (campaign.Result, error) {
			o := opt
			o.Seed = seed
			r := RunWorkload(sys, kind, o)
			return loadCellResult(r), nil
		},
	}
}

// addDistStats folds a distribution's headline statistics into v under
// prefix (prefix_p50 ... prefix_max, prefix_n).
func addDistStats(v campaign.Values, prefix string, d *metrics.Dist) {
	if d == nil || d.N() == 0 {
		return
	}
	v[prefix+"_p50"] = d.Percentile(50)
	v[prefix+"_p90"] = d.Percentile(90)
	v[prefix+"_p99"] = d.Percentile(99)
	v[prefix+"_p999"] = d.Percentile(99.9)
	v[prefix+"_max"] = d.Max()
	v[prefix+"_n"] = float64(d.N())
}

// loadCellResult converts a LoadResult into campaign metrics + dists.
func loadCellResult(r LoadResult) campaign.Result {
	v := campaign.Values{
		"tput_gbps": r.MeanTput,
		"loss_pct":  r.LossRate * 100,
		"fairness":  r.Fairness,
	}
	addDistStats(v, "rtt_ms", r.RTT)
	dists := map[string]*metrics.Dist{}
	if r.RTT != nil && r.RTT.N() > 0 {
		dists["rtt_ms"] = r.RTT
	}
	if r.FCT != nil && r.FCT.N() > 0 {
		addDistStats(v, "fct_ms", r.FCT)
		v["mice_timeouts"] = float64(r.MiceTimeouts)
		dists["fct_ms"] = r.FCT
	}
	return campaign.Result{Metrics: v, Dists: dists}
}

// seeded returns opt with the replica's seed and per-run telemetry
// passed through (the campaign runner decides whether to wire it).
func seeded(opt Options, seed uint64) Options {
	o := opt
	o.Seed = seed
	return o
}

func fig1Cells(opt Options) []campaign.Cell {
	var cells []campaign.Cell
	for _, competing := range []int{1, 2, 3, 4, 6, 8} {
		competing := competing
		cells = append(cells, campaign.Cell{
			Experiment: "fig1",
			ID:         fmt.Sprintf("fig1/competing=%d", competing),
			Run: func(seed uint64) (campaign.Result, error) {
				r := RunFlowletSizes(competing, 500*sim.Microsecond, 32<<20, seeded(opt, seed))
				v := campaign.Values{
					"flowlets":         float64(r.Count),
					"largest_fraction": r.LargestFraction,
				}
				for i, s := range r.TopSizes {
					if i >= 3 {
						break
					}
					v[fmt.Sprintf("top%d_mb", i+1)] = s
				}
				return campaign.Result{Metrics: v}, nil
			},
		})
	}
	return cells
}

func fig5Cells(opt Options) []campaign.Cell {
	var cells []campaign.Cell
	for _, official := range []bool{true, false} {
		official := official
		name := "presto"
		if official {
			name = "official"
		}
		cells = append(cells, campaign.Cell{
			Experiment: "fig5",
			ID:         "fig5/gro=" + name,
			Run: func(seed uint64) (campaign.Result, error) {
				r := RunGROMicrobench(official, seeded(opt, seed))
				v := campaign.Values{
					"tput_gbps":    r.MeanTput,
					"cpu_util_pct": r.CPUUtil * 100,
					"seg_kb_mean":  r.SegSizes.Mean(),
				}
				addDistStats(v, "ooo", r.OOOCounts)
				addDistStats(v, "seg_kb", r.SegSizes)
				return campaign.Result{Metrics: v, Dists: map[string]*metrics.Dist{
					"ooo_counts": r.OOOCounts,
					"seg_kb":     r.SegSizes,
				}}, nil
			},
		})
	}
	return cells
}

func fig6Cells(opt Options) []campaign.Cell {
	var cells []campaign.Cell
	for _, prestoGRO := range []bool{false, true} {
		prestoGRO := prestoGRO
		name := "official"
		if prestoGRO {
			name = "presto"
		}
		cells = append(cells, campaign.Cell{
			Experiment: "fig6",
			ID:         "fig6/gro=" + name,
			Run: func(seed uint64) (campaign.Result, error) {
				r := RunCPUOverhead(prestoGRO, seeded(opt, seed))
				return campaign.Result{Metrics: campaign.Values{
					"cpu_pct":   r.Mean,
					"tput_gbps": r.MeanTput,
				}}, nil
			},
		})
	}
	return cells
}

// scalabilityCell runs RunScalability at one (paths, system) point.
func scalabilityCell(exp string, id string, sys System, paths int, opt Options) campaign.Cell {
	return campaign.Cell{
		Experiment: exp,
		ID:         id,
		Run: func(seed uint64) (campaign.Result, error) {
			return loadCellResult(RunScalability(sys, paths, seeded(opt, seed))), nil
		},
	}
}

func fig7Cells(opt Options) []campaign.Cell {
	var cells []campaign.Cell
	for paths := 2; paths <= 8; paths++ {
		for _, sys := range scaleSystems {
			id := fmt.Sprintf("fig7/paths=%d/sys=%v", paths, sys)
			cells = append(cells, scalabilityCell("fig7", id, sys, paths, opt))
		}
	}
	return cells
}

func fig8Cells(opt Options) []campaign.Cell {
	var cells []campaign.Cell
	for _, sys := range scaleSystems {
		id := fmt.Sprintf("fig8/sys=%v", sys)
		cells = append(cells, scalabilityCell("fig8", id, sys, 8, opt))
	}
	return cells
}

func fig9Cells(opt Options) []campaign.Cell {
	var cells []campaign.Cell
	for _, paths := range []int{2, 4, 8} {
		for _, sys := range scaleSystems {
			id := fmt.Sprintf("fig9/paths=%d/sys=%v", paths, sys)
			cells = append(cells, scalabilityCell("fig9", id, sys, paths, opt))
		}
	}
	return cells
}

// oversubCell runs RunOversubscription at one (flows, system) point.
func oversubCell(exp, id string, sys System, flows int, opt Options) campaign.Cell {
	return campaign.Cell{
		Experiment: exp,
		ID:         id,
		Run: func(seed uint64) (campaign.Result, error) {
			return loadCellResult(RunOversubscription(sys, flows, seeded(opt, seed))), nil
		},
	}
}

func fig10Cells(opt Options) []campaign.Cell {
	var cells []campaign.Cell
	for _, flows := range []int{2, 4, 6, 8} {
		for _, sys := range scaleSystems {
			id := fmt.Sprintf("fig10/flows=%d/sys=%v", flows, sys)
			cells = append(cells, oversubCell("fig10", id, sys, flows, opt))
		}
	}
	return cells
}

func fig11Cells(opt Options) []campaign.Cell {
	var cells []campaign.Cell
	for _, sys := range []System{SysECMP, SysMPTCP, SysPresto} {
		id := fmt.Sprintf("fig11/sys=%v", sys)
		cells = append(cells, oversubCell("fig11", id, sys, 8, opt))
	}
	return cells
}

func fig12Cells(opt Options) []campaign.Cell {
	var cells []campaign.Cell
	for _, flows := range []int{2, 4, 8} {
		for _, sys := range []System{SysECMP, SysMPTCP, SysPresto} {
			id := fmt.Sprintf("fig12/flows=%d/sys=%v", flows, sys)
			cells = append(cells, oversubCell("fig12", id, sys, flows, opt))
		}
	}
	return cells
}

// workloadCellFor runs RunWorkload at one (workload, system) point.
func workloadCellFor(exp, id string, sys System, kind WorkloadKind, opt Options) campaign.Cell {
	return campaign.Cell{
		Experiment: exp,
		ID:         id,
		Run: func(seed uint64) (campaign.Result, error) {
			return loadCellResult(RunWorkload(sys, kind, seeded(opt, seed))), nil
		},
	}
}

func fig13Cells(opt Options) []campaign.Cell {
	var cells []campaign.Cell
	for _, sys := range []System{SysFlowlet100, SysFlowlet500, SysPresto} {
		id := fmt.Sprintf("fig13/sys=%v", sys)
		cells = append(cells, workloadCellFor("fig13", id, sys, Stride, opt))
	}
	return cells
}

func fig14Cells(opt Options) []campaign.Cell {
	var cells []campaign.Cell
	for _, sys := range []System{SysPrestoECMP, SysPresto} {
		id := fmt.Sprintf("fig14/sys=%v", sys)
		cells = append(cells, workloadCellFor("fig14", id, sys, Stride, opt))
	}
	return cells
}

func fig15Cells(opt Options) []campaign.Cell {
	var cells []campaign.Cell
	for _, w := range workloads {
		for _, sys := range scaleSystems {
			id := fmt.Sprintf("fig15/wl=%v/sys=%v", w, sys)
			cells = append(cells, workloadCellFor("fig15", id, sys, w, opt))
		}
	}
	return cells
}

func fig16Cells(opt Options) []campaign.Cell {
	var cells []campaign.Cell
	for _, w := range []WorkloadKind{Stride, Bijection, Shuffle} {
		for _, sys := range scaleSystems {
			id := fmt.Sprintf("fig16/wl=%v/sys=%v", w, sys)
			cells = append(cells, workloadCellFor("fig16", id, sys, w, opt))
		}
	}
	return cells
}

func table1Cells(opt Options) []campaign.Cell {
	var cells []campaign.Cell
	for _, sys := range []System{SysECMP, SysOptimal, SysPresto} {
		sys := sys
		cells = append(cells, campaign.Cell{
			Experiment: "table1",
			ID:         fmt.Sprintf("table1/sys=%v", sys),
			Run: func(seed uint64) (campaign.Result, error) {
				r := RunTrace(sys, seeded(opt, seed))
				v := campaign.Values{
					"elephant_tput_gbps": r.ElephantTput,
					"flows":              float64(r.Flows),
				}
				addDistStats(v, "fct_ms", r.MiceFCT)
				return campaign.Result{Metrics: v, Dists: map[string]*metrics.Dist{"fct_ms": r.MiceFCT}}, nil
			},
		})
	}
	return cells
}

func table2Cells(opt Options) []campaign.Cell {
	var cells []campaign.Cell
	for _, sys := range []System{SysECMP, SysMPTCP, SysPresto, SysOptimal} {
		sys := sys
		cells = append(cells, campaign.Cell{
			Experiment: "table2",
			ID:         fmt.Sprintf("table2/sys=%v", sys),
			Run: func(seed uint64) (campaign.Result, error) {
				r := RunNorthSouth(sys, seeded(opt, seed))
				v := campaign.Values{
					"tput_gbps":     r.MeanTput,
					"mice_timeouts": float64(r.MiceTimeouts),
				}
				addDistStats(v, "fct_ms", r.MiceFCT)
				return campaign.Result{Metrics: v, Dists: map[string]*metrics.Dist{"fct_ms": r.MiceFCT}}, nil
			},
		})
	}
	return cells
}

func fig17Cells(opt Options) []campaign.Cell {
	var cells []campaign.Cell
	for _, w := range []FailoverWorkload{FailL1L4, FailL4L1, FailStride, FailBijection} {
		w := w
		cells = append(cells, campaign.Cell{
			Experiment: "fig17",
			ID:         fmt.Sprintf("fig17/wl=%v", w),
			Run: func(seed uint64) (campaign.Result, error) {
				r := RunFailover(w, seeded(opt, seed))
				return campaign.Result{Metrics: campaign.Values{
					"symmetry_gbps": r.SymmetryTput,
					"failover_gbps": r.FailoverTput,
					"weighted_gbps": r.WeightedTput,
				}}, nil
			},
		})
	}
	return cells
}

func fig18Cells(opt Options) []campaign.Cell {
	return []campaign.Cell{{
		Experiment: "fig18",
		ID:         "fig18/wl=bijection",
		Run: func(seed uint64) (campaign.Result, error) {
			r := RunFailover(FailBijection, seeded(opt, seed))
			v := campaign.Values{}
			addDistStats(v, "symmetry_rtt_ms", r.SymmetryRTT)
			addDistStats(v, "failover_rtt_ms", r.FailoverRTT)
			addDistStats(v, "weighted_rtt_ms", r.WeightedRTT)
			return campaign.Result{Metrics: v, Dists: map[string]*metrics.Dist{
				"rtt_symmetry": r.SymmetryRTT,
				"rtt_failover": r.FailoverRTT,
				"rtt_weighted": r.WeightedRTT,
			}}, nil
		},
	}}
}

// ablationStride is the miniature stride harness the design-choice
// sweeps share (20 ms warmup + 90 ms measurement regardless of opt,
// matching bench_ablation_test.go).
func ablationStride(seed uint64, opt Options, mut func(*cluster.Config)) (gbps float64, c *cluster.Cluster) {
	cfg := cluster.Config{Topology: Testbed(), Scheme: cluster.Presto, Seed: seed, Telemetry: opt.Telemetry}
	if mut != nil {
		mut(&cfg)
	}
	c = cluster.New(cfg)
	el := workload.Stride(c, 8)
	c.Eng.Run(20 * sim.Millisecond)
	el.ResetBaseline(c.Eng.Now())
	c.Eng.Run(90 * sim.Millisecond)
	return el.Mean(c.Eng.Now()), c
}

func ablationCells(opt Options) []campaign.Cell {
	var cells []campaign.Cell
	add := func(id string, run campaign.RunFunc) {
		cells = append(cells, campaign.Cell{Experiment: "ablations", ID: id, Run: run})
	}
	for _, kb := range []int{16, 32, 64, 128, 256} {
		kb := kb
		add(fmt.Sprintf("ablations/flowcell_kb=%d", kb), func(seed uint64) (campaign.Result, error) {
			g, _ := ablationStride(seed, opt, func(cfg *cluster.Config) { cfg.FlowcellBytes = kb << 10 })
			return campaign.Result{Metrics: campaign.Values{"tput_gbps": g}}, nil
		})
	}
	for _, a := range []float64{0.5, 1, 2, 4} {
		a := a
		add(fmt.Sprintf("ablations/gro_alpha=%g", a), func(seed uint64) (campaign.Result, error) {
			g, c := ablationStride(seed, opt, func(cfg *cluster.Config) { cfg.GROConfig = gro.PrestoConfig{Alpha: a} })
			var fires uint64
			for _, h := range c.Hosts {
				fires += h.NIC.GRO().Stats().TimeoutFires
			}
			return campaign.Result{Metrics: campaign.Values{"tput_gbps": g, "timeout_fires": float64(fires)}}, nil
		})
	}
	for _, kb := range []int{256, 512, 2048, 8192} {
		kb := kb
		add(fmt.Sprintf("ablations/buffer_kb=%d", kb), func(seed uint64) (campaign.Result, error) {
			g, c := ablationStride(seed, opt, func(cfg *cluster.Config) { cfg.Fabric = fabric.Config{SwitchQueueBytes: kb << 10} })
			return campaign.Result{Metrics: campaign.Values{"tput_gbps": g, "loss_pct": c.Net.LossRate() * 100}}, nil
		})
	}
	for _, cc := range []string{"cubic", "reno", "dctcp"} {
		cc := cc
		add("ablations/cc="+cc, func(seed uint64) (campaign.Result, error) {
			g, _ := ablationStride(seed, opt, func(cfg *cluster.Config) {
				cfg.TCP = tcp.Config{CC: cc}
				if cc == "dctcp" {
					cfg.Fabric = fabric.Config{ECNThresholdBytes: 200 << 10}
				}
			})
			return campaign.Result{Metrics: campaign.Values{"tput_gbps": g}}, nil
		})
	}
	for _, tunnel := range []bool{false, true} {
		tunnel := tunnel
		name := "per-host"
		if tunnel {
			name = "tunnel"
		}
		add("ablations/labels="+name, func(seed uint64) (campaign.Result, error) {
			g, c := ablationStride(seed, opt, func(cfg *cluster.Config) { cfg.Ctrl.TunnelMode = tunnel })
			rules := 0
			for _, leaf := range c.Topo.Leaves {
				rules += c.Net.Switch(leaf).LabelCount()
			}
			return campaign.Result{Metrics: campaign.Values{"tput_gbps": g, "leaf_rules": float64(rules)}}, nil
		})
	}
	return cells
}

// podtrafficCells drives cross-pod elephants on a pod-based 3-tier
// Clos. Options.Shards selects the engine partitioning; every metric
// below is bit-identical across shard counts (the events metric pins
// exactly that in golden gates), so the knob only changes wall-clock
// time.
func podtrafficCells(opt Options) []campaign.Cell {
	const pods, hostsPerLeaf = 4, 2
	var cells []campaign.Cell
	for _, sys := range []System{SysECMP, SysPresto} {
		sys := sys
		cells = append(cells, campaign.Cell{
			Experiment: "podtraffic",
			ID:         fmt.Sprintf("podtraffic/pods=%d/sys=%v", pods, sys),
			Run: func(seed uint64) (campaign.Result, error) {
				r := RunPodTraffic(sys, pods, hostsPerLeaf, seeded(opt, seed))
				return campaign.Result{Metrics: campaign.Values{
					"tput_gbps": r.MeanTput,
					"fairness":  r.Fairness,
					"loss_pct":  r.LossRate * 100,
					"events":    float64(r.Events),
				}}, nil
			},
		})
	}
	return cells
}

// ExperimentsInReport lists the distinct experiment IDs present in a
// report, in cell order.
func ExperimentsInReport(r *campaign.Report) []string {
	seen := map[string]bool{}
	var out []string
	for i := range r.Cells {
		if e := r.Cells[i].Experiment; !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}
