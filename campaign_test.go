package presto

import (
	"bytes"
	"testing"

	"presto/internal/campaign"
	"presto/internal/sim"
)

// fig5Spec builds a small real-cell campaign (GRO microbenchmark, the
// cheapest experiment) with the given worker count.
func fig5Spec(t *testing.T, parallelism, seeds int) *campaign.Spec {
	t.Helper()
	opt := Options{
		Duration: 20 * sim.Millisecond,
		Warmup:   5 * sim.Millisecond,
	}
	spec, err := CampaignSpec("fig5", opt)
	if err != nil {
		t.Fatal(err)
	}
	spec.Seeds = campaign.Seeds(1, seeds)
	spec.Parallelism = parallelism
	return spec
}

// TestCampaignDeterministicAcrossParallelism runs real simulator cells
// at -parallel 1 and -parallel 4 and requires byte-identical JSON and
// CSV artifacts: scheduling must never leak into results.
func TestCampaignDeterministicAcrossParallelism(t *testing.T) {
	artifacts := func(parallelism int) (string, string) {
		report, err := RunCampaign(fig5Spec(t, parallelism, 2))
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := report.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := report.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := artifacts(1)
	j4, c4 := artifacts(4)
	if j1 != j4 {
		t.Error("report JSON differs between -parallel 1 and -parallel 4")
	}
	if c1 != c4 {
		t.Error("report CSV differs between -parallel 1 and -parallel 4")
	}
}

// TestSeedRecordedInResults checks the replay contract: every Run*
// result struct carries the seed that produced it.
func TestSeedRecordedInResults(t *testing.T) {
	opt := Options{
		Seed:     7,
		Duration: 20 * sim.Millisecond,
		Warmup:   5 * sim.Millisecond,
	}
	if r := RunWorkload(SysECMP, Stride, opt); r.Seed != 7 {
		t.Errorf("LoadResult.Seed = %d, want 7", r.Seed)
	}
	if r := RunGROMicrobench(true, opt); r.Seed != 7 {
		t.Errorf("GROResult.Seed = %d, want 7", r.Seed)
	}
}

// TestCampaignSpecSelection exercises the ID parser: single, multiple,
// all, and unknown selections.
func TestCampaignSpecSelection(t *testing.T) {
	opt := Options{Duration: 20 * sim.Millisecond, Warmup: 5 * sim.Millisecond}

	single, err := CampaignSpec("fig5", opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := ExperimentsInReport(&campaign.Report{Cells: resultsOf(single)}); len(got) != 1 || got[0] != "fig5" {
		t.Errorf("fig5 selection produced experiments %v", got)
	}

	multi, err := CampaignSpec("fig5,table1", opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Cells) <= len(single.Cells) {
		t.Errorf("fig5,table1 has %d cells, want more than fig5's %d", len(multi.Cells), len(single.Cells))
	}

	all, err := CampaignSpec("all", opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Cells) < len(multi.Cells) {
		t.Errorf("all has %d cells, want at least %d", len(all.Cells), len(multi.Cells))
	}

	if _, err := CampaignSpec("fig99", opt); err == nil {
		t.Error("unknown experiment ID accepted")
	}
	if _, err := CampaignSpec("", opt); err == nil {
		t.Error("empty selection accepted")
	}
}

// resultsOf turns a spec's cells into empty CellResults so the
// experiment listing can be checked without running anything.
func resultsOf(spec *campaign.Spec) []campaign.CellResult {
	out := make([]campaign.CellResult, len(spec.Cells))
	for i, c := range spec.Cells {
		out[i] = campaign.CellResult{Experiment: c.Experiment, ID: c.ID}
	}
	return out
}

// TestCampaignExperimentIDs checks the registry lists every paper
// artifact and titles resolve.
func TestCampaignExperimentIDs(t *testing.T) {
	ids := CampaignExperimentIDs()
	if len(ids) == 0 {
		t.Fatal("no experiment IDs registered")
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate experiment ID %q", id)
		}
		seen[id] = true
		if CampaignExperimentTitle(id) == "" {
			t.Errorf("experiment %q has no title", id)
		}
	}
	for _, want := range []string{"fig1", "fig5", "fig7", "table1", "table2", "ablations"} {
		if !seen[want] {
			t.Errorf("experiment registry missing %q", want)
		}
	}
}
