package presto

// One benchmark per table and figure of the paper's evaluation. Each
// iteration runs the corresponding experiment on a reduced window and
// reports the headline metric(s) via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation in miniature. cmd/experiments runs
// the full-window versions and prints the paper-style tables.

import (
	"fmt"
	"testing"

	"presto/internal/sim"
)

func benchOpt(seed uint64) Options {
	return Options{
		Seed:         seed,
		Warmup:       20 * sim.Millisecond,
		Duration:     50 * sim.Millisecond,
		MiceInterval: 4 * sim.Millisecond,
	}
}

// BenchmarkFig1FlowletSizes regenerates Figure 1: flowlet size skew
// under competing flows with a 500 µs inactivity gap.
func BenchmarkFig1FlowletSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := RunFlowletSizes(3, 500*sim.Microsecond, 16<<20, benchOpt(uint64(i)))
		b.ReportMetric(r.LargestFraction, "largest-flowlet-frac")
		b.ReportMetric(float64(r.Count), "flowlets")
	}
}

// BenchmarkFig5GROReordering regenerates Figure 5: official vs Presto
// GRO under flowcell spraying.
func BenchmarkFig5GROReordering(b *testing.B) {
	for _, official := range []bool{true, false} {
		name := "PrestoGRO"
		if official {
			name = "OfficialGRO"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := RunGROMicrobench(official, benchOpt(uint64(i)))
				b.ReportMetric(r.MeanTput, "Gbps")
				b.ReportMetric(r.OOOCounts.Percentile(90), "ooo-p90")
				b.ReportMetric(r.SegSizes.Mean(), "seg-KB")
				b.ReportMetric(r.CPUUtil*100, "cpu%")
			}
		})
	}
}

// BenchmarkFig6CPUOverhead regenerates Figure 6: receiver CPU at line
// rate, Presto GRO vs official GRO without reordering.
func BenchmarkFig6CPUOverhead(b *testing.B) {
	for _, prestoGRO := range []bool{false, true} {
		name := "OfficialGRO"
		if prestoGRO {
			name = "PrestoGRO"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := RunCPUOverhead(prestoGRO, benchOpt(uint64(i)))
				b.ReportMetric(r.Mean, "cpu%")
				b.ReportMetric(r.MeanTput, "Gbps")
			}
		})
	}
}

// BenchmarkFig7Scalability regenerates Figure 7: throughput vs path
// count for every system (8-path point; sweep via cmd/experiments).
func BenchmarkFig7Scalability(b *testing.B) {
	for _, sys := range []System{SysECMP, SysMPTCP, SysPresto, SysOptimal} {
		b.Run(sys.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := RunScalability(sys, 8, benchOpt(uint64(i)))
				b.ReportMetric(r.MeanTput, "Gbps")
			}
		})
	}
}

// BenchmarkFig8ScalabilityRTT regenerates Figure 8: the RTT
// distribution at 8 paths.
func BenchmarkFig8ScalabilityRTT(b *testing.B) {
	for _, sys := range []System{SysECMP, SysPresto, SysOptimal} {
		b.Run(sys.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := RunScalability(sys, 8, benchOpt(uint64(i)))
				b.ReportMetric(r.RTT.Percentile(99), "rtt-p99-ms")
			}
		})
	}
}

// BenchmarkFig9LossFairness regenerates Figure 9: loss rate and
// fairness in the scalability benchmark.
func BenchmarkFig9LossFairness(b *testing.B) {
	for _, sys := range []System{SysECMP, SysMPTCP, SysPresto, SysOptimal} {
		b.Run(sys.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := RunScalability(sys, 4, benchOpt(uint64(i)))
				b.ReportMetric(r.LossRate*100, "loss%")
				b.ReportMetric(r.Fairness, "jain")
			}
		})
	}
}

// BenchmarkFig10Oversubscription regenerates Figure 10: throughput
// under 4:1 oversubscription.
func BenchmarkFig10Oversubscription(b *testing.B) {
	for _, sys := range []System{SysECMP, SysMPTCP, SysPresto, SysOptimal} {
		b.Run(sys.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := RunOversubscription(sys, 8, benchOpt(uint64(i)))
				b.ReportMetric(r.MeanTput, "Gbps")
			}
		})
	}
}

// BenchmarkFig11OversubRTT regenerates Figure 11: RTT under
// oversubscription.
func BenchmarkFig11OversubRTT(b *testing.B) {
	for _, sys := range []System{SysECMP, SysMPTCP, SysPresto} {
		b.Run(sys.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := RunOversubscription(sys, 8, benchOpt(uint64(i)))
				b.ReportMetric(r.RTT.Percentile(99), "rtt-p99-ms")
			}
		})
	}
}

// BenchmarkFig12OversubLossFairness regenerates Figure 12.
func BenchmarkFig12OversubLossFairness(b *testing.B) {
	for _, sys := range []System{SysECMP, SysMPTCP, SysPresto} {
		b.Run(sys.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := RunOversubscription(sys, 6, benchOpt(uint64(i)))
				b.ReportMetric(r.LossRate*100, "loss%")
				b.ReportMetric(r.Fairness, "jain")
			}
		})
	}
}

// BenchmarkFig13Flowlet regenerates Figure 13: flowlet switching
// (100/500 µs) vs Presto on stride.
func BenchmarkFig13Flowlet(b *testing.B) {
	for _, sys := range []System{SysFlowlet100, SysFlowlet500, SysPresto} {
		b.Run(sys.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := RunWorkload(sys, Stride, benchOpt(uint64(i)))
				b.ReportMetric(r.MeanTput, "Gbps")
				b.ReportMetric(r.RTT.Percentile(99.9), "rtt-p999-ms")
			}
		})
	}
}

// BenchmarkFig14PerHop regenerates Figure 14: Presto end-to-end
// shadow MACs vs per-hop ECMP hashing of flowcells.
func BenchmarkFig14PerHop(b *testing.B) {
	for _, sys := range []System{SysPrestoECMP, SysPresto} {
		b.Run(sys.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := RunWorkload(sys, Stride, benchOpt(uint64(i)))
				b.ReportMetric(r.MeanTput, "Gbps")
				b.ReportMetric(r.RTT.Percentile(99), "rtt-p99-ms")
			}
		})
	}
}

// BenchmarkFig15Workloads regenerates Figure 15: elephant throughput
// across the four synthetic workloads (stride shown per system;
// others via sub-benchmarks).
func BenchmarkFig15Workloads(b *testing.B) {
	for _, w := range []WorkloadKind{Shuffle, Random, Stride, Bijection} {
		for _, sys := range []System{SysECMP, SysMPTCP, SysPresto, SysOptimal} {
			b.Run(fmt.Sprintf("%v/%v", w, sys), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := RunWorkload(sys, w, benchOpt(uint64(i)))
					b.ReportMetric(r.MeanTput, "Gbps")
				}
			})
		}
	}
}

// BenchmarkFig16MiceFCT regenerates Figure 16: the mice FCT tail per
// system on stride.
func BenchmarkFig16MiceFCT(b *testing.B) {
	for _, sys := range []System{SysECMP, SysMPTCP, SysPresto, SysOptimal} {
		b.Run(sys.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := RunWorkload(sys, Stride, benchOpt(uint64(i)))
				b.ReportMetric(r.FCT.Percentile(99.9), "fct-p999-ms")
			}
		})
	}
}

// BenchmarkTable1Trace regenerates Table 1: trace-driven mice FCT.
func BenchmarkTable1Trace(b *testing.B) {
	for _, sys := range []System{SysECMP, SysOptimal, SysPresto} {
		b.Run(sys.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := RunTrace(sys, benchOpt(uint64(i)))
				b.ReportMetric(r.MiceFCT.Percentile(99), "fct-p99-ms")
				b.ReportMetric(r.ElephantTput, "eleph-Gbps")
			}
		})
	}
}

// BenchmarkTable2NorthSouth regenerates Table 2: east-west mice FCT
// under north-south cross traffic.
func BenchmarkTable2NorthSouth(b *testing.B) {
	for _, sys := range []System{SysECMP, SysMPTCP, SysPresto, SysOptimal} {
		b.Run(sys.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := RunNorthSouth(sys, benchOpt(uint64(i)))
				b.ReportMetric(r.MiceFCT.Percentile(99), "fct-p99-ms")
				b.ReportMetric(r.MeanTput, "Gbps")
			}
		})
	}
}

// BenchmarkFig17Failover regenerates Figure 17: per-stage throughput
// around a link failure.
func BenchmarkFig17Failover(b *testing.B) {
	for _, w := range []FailoverWorkload{FailL1L4, FailL4L1, FailStride, FailBijection} {
		b.Run(w.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := RunFailover(w, benchOpt(uint64(i)))
				b.ReportMetric(r.SymmetryTput, "sym-Gbps")
				b.ReportMetric(r.FailoverTput, "fo-Gbps")
				b.ReportMetric(r.WeightedTput, "wt-Gbps")
			}
		})
	}
}

// BenchmarkFig18FailoverRTT regenerates Figure 18: per-stage RTT.
func BenchmarkFig18FailoverRTT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := RunFailover(FailBijection, benchOpt(uint64(i)))
		b.ReportMetric(r.SymmetryRTT.Percentile(99), "sym-p99-ms")
		b.ReportMetric(r.FailoverRTT.Percentile(99), "fo-p99-ms")
		b.ReportMetric(r.WeightedRTT.Percentile(99), "wt-p99-ms")
	}
}
