package presto

import (
	"fmt"

	"presto/internal/campaign"
	"presto/internal/metrics"
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/topo"
	"presto/internal/workload"
	wspec "presto/internal/workload/spec"
)

// This file wires declarative workload specs (internal/workload/spec)
// into the experiment harness: RunSpecWorkload executes one spec on
// one system, SpecWorkloadCell wraps that as a campaign cell carrying
// the spec hash, and SpecWorkloadCampaign sweeps a spec across the §4
// system lineup — the shared engine behind `-workload` on
// cmd/experiments and cmd/prestosim and the `workload` field of
// prestod job requests.

// specTopo returns the testbed for sys, attaching the Table 2-style
// 100 Mbps remote users when the spec has north-south clients
// (mirroring RunNorthSouth's topology setup).
func specTopo(sys System, ws *wspec.Spec) *topo.Topology {
	if !ws.NeedsRemotes() {
		return topoFor(sys, Testbed)
	}
	if sys == SysOptimal {
		tp := OptimalTopo(16)
		for i := 0; i < 4; i++ {
			tp.MarkRemote(tp.AddLeafHost(tp.Leaves[0], 100e6, 5*sim.Microsecond))
		}
		return tp
	}
	tp := Testbed()
	for _, s := range tp.Spines {
		tp.AddSpineHost(s, 100e6, 5*sim.Microsecond)
	}
	return tp
}

// RunSpecWorkload compiles and runs a workload spec on one system:
// warmup, baseline reset, measurement window, then a LoadResult
// harvested from the generator (elephant throughput/fairness when the
// spec has unlimited clients, FCTs of every sized flow, switch loss)
// plus RTT probes over the testbed stride pairs.
func RunSpecWorkload(sys System, ws *wspec.Spec, opt Options) (LoadResult, []wspec.ClientResult, error) {
	opt.fill()
	return runSpecOn(sys, specTopo(sys, ws), ws, opt, hostPairs(16, 8))
}

// RunSpecWorkloadOn runs a workload spec on an explicit topology —
// the scheme-matrix engine. Unlike RunSpecWorkload (frozen to the
// Figure 3 testbed and its historical prober pairs), the probe pairs
// scale with the topology's server count.
func RunSpecWorkloadOn(sys System, tp *topo.Topology, ws *wspec.Spec, opt Options) (LoadResult, []wspec.ClientResult, error) {
	opt.fill()
	n := 0
	for i := 0; i < tp.NumHosts(); i++ {
		if !tp.IsRemote(packet.HostID(i)) {
			n++
		}
	}
	return runSpecOn(sys, tp, ws, opt, hostPairs(n, n/2))
}

// runSpecOn is the shared body: compile the spec onto a cluster,
// warm up, measure, and harvest a LoadResult plus per-client results.
func runSpecOn(sys System, tp *topo.Topology, ws *wspec.Spec, opt Options, pairs [][2]packet.HostID) (LoadResult, []wspec.ClientResult, error) {
	c := buildCluster(sys, tp, opt)
	g, err := wspec.Compile(ws, c, opt.Seed)
	if err != nil {
		return LoadResult{}, nil, err
	}
	probers := workload.StartProbers(c, pairs, opt.ProbeInterval)
	until := opt.Warmup + opt.Duration
	g.Start(until)
	c.Eng.Run(opt.Warmup)
	g.ResetBaseline(c.Eng.Now())
	c.Eng.Run(until)

	res := LoadResult{System: sys, Seed: opt.Seed, LossRate: c.Net.LossRate(), Fairness: 1}
	res.MeanTput = g.MeanTput(c.Eng.Now())
	if f := g.Fairness(c.Eng.Now()); f > 0 {
		res.Fairness = f
	}
	res.RTT = workload.CollectRTT(probers)
	clients := g.Results(c.Eng.Now())
	fct := &metrics.Dist{}
	timeouts := 0
	for _, cr := range clients {
		if cr.FCT != nil {
			for _, v := range cr.FCT.Samples() {
				fct.Add(v)
			}
		}
		timeouts += cr.Timeouts
	}
	if fct.N() > 0 {
		res.FCT = fct
		res.MiceTimeouts = timeouts
	}
	res.Telemetry = c.Telemetry().Snapshot(c.Eng.Now())
	return res, clients, nil
}

// SpecWorkloadCell builds one campaign cell running a workload spec on
// one system. The cell ID embeds the spec name and the cell carries
// the spec hash, so artifacts key on the exact workload.
func SpecWorkloadCell(sys System, ws *wspec.Spec, opt Options) campaign.Cell {
	return campaign.Cell{
		Experiment: "workload-spec",
		ID:         fmt.Sprintf("workload-spec/wl=%s/sys=%v", ws.Name, sys),
		Workload:   ws.Hash(),
		Run: func(seed uint64) (campaign.Result, error) {
			o := opt
			o.Seed = seed
			r, clients, err := RunSpecWorkload(sys, ws, o)
			if err != nil {
				return campaign.Result{}, err
			}
			res := loadCellResult(r)
			// Per-client outcomes ride along so multi-client specs stay
			// diagnosable (e.g. mice vs elephants of mice-heavy).
			for _, cr := range clients {
				p := "client_" + cr.ID
				res.Metrics[p+"_started"] = float64(cr.Started)
				res.Metrics[p+"_finished"] = float64(cr.Finished)
				if cr.FCT != nil && cr.FCT.N() > 0 {
					res.Metrics[p+"_fct_ms_p99"] = cr.FCT.Percentile(99)
					if res.Dists == nil {
						res.Dists = map[string]*metrics.Dist{}
					}
					res.Dists["fct_ms_"+cr.ID] = cr.FCT
				}
				if cr.Tput > 0 {
					res.Metrics[p+"_tput_gbps"] = cr.Tput
				}
			}
			return res, nil
		},
	}
}

// SpecWorkloadCampaign sweeps one workload spec across systems
// (default: the §4 lineup ECMP/MPTCP/Presto/Optimal). The spec hash
// is recorded both per cell and as a campaign param, so the campaign
// hash — and any golden gate — pins the exact workload.
func SpecWorkloadCampaign(ws *wspec.Spec, systems []System, opt Options) *campaign.Spec {
	opt.fill()
	if len(systems) == 0 {
		systems = scaleSystems
	}
	cs := &campaign.Spec{
		Name: "workload-spec/" + ws.Name,
		Params: map[string]string{
			"duration": opt.Duration.String(),
			"warmup":   opt.Warmup.String(),
			"workload": ws.Hash(),
		},
	}
	for _, sys := range systems {
		cs.Cells = append(cs.Cells, SpecWorkloadCell(sys, ws, opt))
	}
	return cs
}
