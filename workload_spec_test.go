package presto

import (
	"bytes"
	"testing"

	"presto/internal/campaign"
	"presto/internal/sim"
	wspec "presto/internal/workload/spec"
)

// TestExampleSpecsMatchPresets pins the committed examples/specs files
// to their presets: each file must load, validate, and hash to exactly
// the preset of the same name, so docs, CI, and code never drift.
func TestExampleSpecsMatchPresets(t *testing.T) {
	for _, name := range wspec.PresetNames() {
		ws, err := wspec.Load("examples/specs/" + name + ".json")
		if err != nil {
			t.Errorf("examples/specs/%s.json: %v", name, err)
			continue
		}
		p, err := wspec.Preset(name)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if ws.Hash() != p.Hash() {
			t.Errorf("examples/specs/%s.json hash %s != preset hash %s (regenerate the file from the preset)",
				name, ws.Hash(), p.Hash())
		}
	}
}

// specCampaign builds a one-system mice-heavy campaign with the given
// worker count — the spec-workload analogue of fig5Spec.
func specCampaign(t *testing.T, parallelism, seeds int) *campaign.Spec {
	t.Helper()
	ws, err := wspec.Preset("mice-heavy")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		Duration: 10 * sim.Millisecond,
		Warmup:   5 * sim.Millisecond,
	}
	spec := SpecWorkloadCampaign(ws, []System{SysPresto}, opt)
	spec.Seeds = campaign.Seeds(1, seeds)
	spec.Parallelism = parallelism
	return spec
}

// TestSpecWorkloadDeterministicAcrossParallelism is the workload-spec
// determinism invariant: the same spec + seed must produce
// byte-identical campaign artifacts at -parallel 1 and -parallel 8,
// because every random draw comes from per-client streams derived from
// the run seed, never from scheduling.
func TestSpecWorkloadDeterministicAcrossParallelism(t *testing.T) {
	artifacts := func(parallelism int) (string, string) {
		report, err := RunCampaign(specCampaign(t, parallelism, 2))
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := report.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := report.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := artifacts(1)
	j8, c8 := artifacts(8)
	if j1 != j8 {
		t.Error("report JSON differs between -parallel 1 and -parallel 8")
	}
	if c1 != c8 {
		t.Error("report CSV differs between -parallel 1 and -parallel 8")
	}
}

// TestSpecWorkloadHashInArtifacts checks the manifest/report carry the
// workload hash: cells record it and the manifest lists it, so cached
// or archived artifacts key on the exact workload definition.
func TestSpecWorkloadHashInArtifacts(t *testing.T) {
	spec := specCampaign(t, 2, 1)
	report, err := RunCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := wspec.Preset("mice-heavy")
	if err != nil {
		t.Fatal(err)
	}
	want := ws.Hash()
	if len(report.Cells) == 0 || report.Cells[0].Workload != want {
		t.Errorf("cell workload hash = %q, want %q", report.Cells[0].Workload, want)
	}
	m := report.Manifest("")
	if len(m.Workloads) != 1 || m.Workloads[0] != want {
		t.Errorf("manifest workloads = %v, want [%s]", m.Workloads, want)
	}
}

// TestRunSpecWorkloadNorthSouth covers the remote-user topology path
// end to end through the facade: a north-south client compiles and
// moves traffic on the spine-attached 100 Mbps hosts.
func TestRunSpecWorkloadNorthSouth(t *testing.T) {
	ws := &wspec.Spec{
		Version:       wspec.Version,
		Name:          "ns-test",
		AggregateRate: 500,
		Clients: []wspec.Client{{
			ID:           "ns",
			RateFraction: 1,
			Arrival:      wspec.Arrival{Process: wspec.ProcPoisson},
			Size:         wspec.SizeDist{Kind: wspec.SizeFixed, Bytes: 20000},
			Select:       wspec.Select{Kind: wspec.SelNorthSouth},
		}},
	}
	_, clients, err := RunSpecWorkload(SysPresto, ws, Options{
		Seed:     1,
		Duration: 10 * sim.Millisecond,
		Warmup:   2 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(clients) != 1 || clients[0].Finished == 0 {
		t.Fatalf("north-south client finished no flows: %+v", clients)
	}
}
